//===- Progress.cpp - Throttled live run telemetry ------------------------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "obs/Progress.h"

#include "support/Subprocess.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace lna;

std::string lna::formatProgressLine(const ProgressSnapshot &S) {
  // A non-positive or non-finite elapsed time (clock resolution, a
  // stepped clock) yields no rate estimate at all, never inf/nan.
  double Rate = 0.0;
  if (S.Done > 0 && S.ElapsedSeconds > 0 && std::isfinite(S.ElapsedSeconds))
    Rate = static_cast<double>(S.Done) / S.ElapsedSeconds;
  if (!std::isfinite(Rate))
    Rate = 0.0;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "lna-corpus: %" PRIu64 "/%" PRIu64 " %.1f/s",
                S.Done, S.Total, Rate);
  std::string Line = Buf;
  if (Rate > 0 && S.Total > S.Done &&
      S.ElapsedSeconds >= ProgressMinEtaElapsedSeconds) {
    double Eta = static_cast<double>(S.Total - S.Done) / Rate;
    if (!std::isfinite(Eta) || Eta > ProgressMaxEtaSeconds)
      Line += " eta >30d";
    else {
      std::snprintf(Buf, sizeof(Buf), " eta %.0fs", Eta);
      Line += Buf;
    }
  }
  if (!S.Workers.empty()) {
    Line += " workers ";
    Line += S.Workers;
  }
  std::snprintf(Buf, sizeof(Buf),
                " retry %" PRIu64 " crash %" PRIu64 " quar %" PRIu64
                " cache %" PRIu64,
                S.Retries, S.Crashes, S.Quarantines, S.CacheHits);
  Line += Buf;
  return Line;
}

void ProgressMeter::start(uint64_t TotalModules, uint64_t EveryMs) {
  Enabled = true;
  Total = TotalModules;
  Every = std::chrono::milliseconds(EveryMs ? EveryMs : 250);
  Start = std::chrono::steady_clock::now();
  // Backdate so the first event paints immediately.
  LastPaint = Start - Every;
}

void ProgressMeter::setWorkers(size_t N) {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(RenderMutex);
  Workers.assign(N, '-');
}

void ProgressMeter::setWorkerState(size_t Slot, char State) {
  if (!Enabled)
    return;
  {
    std::lock_guard<std::mutex> Lock(RenderMutex);
    if (Slot < Workers.size())
      Workers[Slot] = State;
  }
}

void ProgressMeter::noteDone(bool CacheHit, bool Retried) {
  if (!Enabled)
    return;
  Done.fetch_add(1, std::memory_order_relaxed);
  if (CacheHit)
    CacheHits.fetch_add(1, std::memory_order_relaxed);
  if (Retried)
    Retries.fetch_add(1, std::memory_order_relaxed);
  maybeRender();
}

void ProgressMeter::noteCrash() {
  if (Enabled)
    Crashes.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMeter::noteQuarantine() {
  if (Enabled)
    Quarantines.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMeter::maybeRender() {
  if (!Enabled)
    return;
  std::unique_lock<std::mutex> Lock(RenderMutex, std::try_to_lock);
  if (!Lock.owns_lock())
    return; // someone else is painting; the next repaint catches up
  auto Now = std::chrono::steady_clock::now();
  if (Now - LastPaint < Every)
    return;
  LastPaint = Now;
  render();
}

void ProgressMeter::render() {
  // Called with RenderMutex held.
  auto Now = std::chrono::steady_clock::now();
  ProgressSnapshot S;
  S.Done = Done.load(std::memory_order_relaxed);
  S.Total = Total;
  S.ElapsedSeconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Now - Start)
          .count();
  S.Retries = Retries.load(std::memory_order_relaxed);
  S.Crashes = Crashes.load(std::memory_order_relaxed);
  S.Quarantines = Quarantines.load(std::memory_order_relaxed);
  S.CacheHits = CacheHits.load(std::memory_order_relaxed);
  S.Workers.assign(Workers.begin(), Workers.end());
  // \r repaint in place; \033[K erases any longer previous line.
  std::string Out = "\r";
  Out += formatProgressLine(S);
  Out += "\033[K";
  writeAll(2, Out);
  Painted = true;
}

void ProgressMeter::finish() {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(RenderMutex);
  if (Painted)
    writeAll(2, "\r\033[K");
  Painted = false;
  Enabled = false;
}
