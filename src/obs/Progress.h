//===- Progress.h - Throttled live run telemetry ---------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--progress[=every-ms]` status line: a single carriage-returned
/// stderr line showing done/total, completion rate, ETA, per-worker
/// state, and the retry/crash/quarantine/cache-hit counters, repainted
/// at most once per throttle interval. Off by default; when on, it is
/// byte-invisible to every durable output (report, JSON, checkpoint,
/// shards, journals) -- it only ever touches stderr, and finish()
/// erases the line so the final stderr summary lines land on a clean
/// row.
///
/// Counters are atomics so the in-process thread pool can bump them
/// from worker threads; rendering is serialized by a try-lock (a
/// contended repaint is simply skipped -- the next one catches up).
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_PROGRESS_H
#define LNA_OBS_PROGRESS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lna {

/// Everything one status-line repaint renders from, captured at one
/// instant. Exists so the line formatting is a pure function of plain
/// values and the ETA arithmetic can be unit-tested without clocks.
struct ProgressSnapshot {
  uint64_t Done = 0;
  uint64_t Total = 0;
  double ElapsedSeconds = 0.0;
  uint64_t Retries = 0;
  uint64_t Crashes = 0;
  uint64_t Quarantines = 0;
  uint64_t CacheHits = 0;
  /// One state char per worker slot; empty hides the worker display.
  std::string Workers;
};

/// ETAs are suppressed until this much wall clock has passed: before
/// that, the completion rate is a one-sample extrapolation and the
/// division produces nonsense (the first repaint is backdated to paint
/// immediately, so ElapsedSeconds can be microseconds).
constexpr double ProgressMinEtaElapsedSeconds = 1.0;
/// ETAs longer than 30 days render as ">30d" -- beyond that the number
/// is noise, and an absurd rate denominator cannot overflow the line.
constexpr double ProgressMaxEtaSeconds = 30.0 * 24 * 3600;

/// Renders one status line (no '\r'/erase framing). The rate is clamped
/// to finite values and the ETA is printed only when it is meaningful:
/// some progress, a finite positive rate, at least
/// ProgressMinEtaElapsedSeconds observed, and work remaining.
std::string formatProgressLine(const ProgressSnapshot &S);

/// Live status line for one corpus run. start() arms it; all methods
/// are cheap no-ops while disarmed, so call sites need no guards.
class ProgressMeter {
public:
  /// Arms the meter: \p Total modules expected, repaint at most every
  /// \p EveryMs milliseconds.
  void start(uint64_t Total, uint64_t EveryMs);
  bool enabled() const { return Enabled; }

  /// Sizes the per-worker state display (supervised runs only); all
  /// slots start as '-' (never spawned).
  void setWorkers(size_t N);
  /// One-character state for slot \p Slot: 'r' running, 'i' idle,
  /// 'b' backoff, 'd' dead.
  void setWorkerState(size_t Slot, char State);

  void noteDone(bool CacheHit, bool Retried);
  void noteCrash();
  void noteQuarantine();

  /// Repaints if the throttle interval elapsed. Called internally by
  /// noteDone; call directly after worker-state changes.
  void maybeRender();
  /// Erases the status line; the meter disarms.
  void finish();

private:
  void render();

  bool Enabled = false;
  uint64_t Total = 0;
  std::chrono::steady_clock::time_point Start;
  std::chrono::milliseconds Every{250};
  std::atomic<uint64_t> Done{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> Retries{0};
  std::atomic<uint64_t> Crashes{0};
  std::atomic<uint64_t> Quarantines{0};
  std::mutex RenderMutex; ///< guards LastPaint, Workers, stderr paints
  std::chrono::steady_clock::time_point LastPaint;
  std::vector<char> Workers;
  bool Painted = false; ///< a line is on screen and needs erasing
};

} // namespace lna

#endif // LNA_OBS_PROGRESS_H
