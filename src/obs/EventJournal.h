//===- EventJournal.h - JSONL run-lifecycle event stream ------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable side of fleet observability: a JSON-Lines
/// journal of typed run-lifecycle events (`--events-out`). Where the
/// corpus report answers "what did the analysis conclude", the event
/// journal answers "what did the *run* do": worker spawns, deaths,
/// restarts, backoff, timeouts, module dispatch/completion, quarantine
/// verdicts, shard and cache activity.
///
/// Format: one JSON object per line. Every event carries
///
///   {"ts_us":<monotonic-us>,"event":"<type>", ...fields}
///
/// with ts_us measured from the journal's open() on the steady clock
/// and clamped non-decreasing, so a consumer can total-order the stream
/// without trusting the wall clock. Strings are escaped with the same
/// jsonEscape the other obs emitters use.
///
/// Writers are cheap and thread-safe: fields are formatted into a local
/// buffer and the finished line is published with one mutex-guarded
/// write(2), so events from the supervisor and from pool threads never
/// interleave mid-line. The journal is timing-bearing by nature and
/// lives entirely outside the deterministic report surface -- a run
/// with `--events-out` produces byte-identical reports to one without.
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_EVENTJOURNAL_H
#define LNA_OBS_EVENTJOURNAL_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace lna {

/// Appending JSONL event writer. One instance per run, shared by the
/// tool, the supervisor, and the in-process runner.
class EventJournal {
public:
  EventJournal() = default;
  ~EventJournal();
  EventJournal(const EventJournal &) = delete;
  EventJournal &operator=(const EventJournal &) = delete;

  /// Opens (and truncates) \p Path and starts the monotonic clock.
  /// False when the file cannot be created.
  bool open(const std::string &Path);
  bool isOpen() const { return Fd >= 0; }
  void close();

  /// One event line under construction. Append fields with the chained
  /// setters; the line is written when the builder goes out of scope
  /// (the end of the full expression for the usual one-liner form):
  ///
  ///   J.event("worker-death").num("worker", 2).str("status", St);
  class Event {
  public:
    Event &str(const char *Key, std::string_view Value);
    Event &num(const char *Key, uint64_t Value);
    Event &flag(const char *Key, bool Value);
    ~Event();
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

  private:
    friend class EventJournal;
    Event(EventJournal *J, const char *Type);
    EventJournal *J;
    std::string Line;
  };

  /// Starts an event of \p Type. Cheap no-op builder when not open.
  Event event(const char *Type) { return Event(isOpen() ? this : nullptr, Type); }

private:
  void writeLine(std::string &Line);

  int Fd = -1;
  std::mutex Mutex;
  std::chrono::steady_clock::time_point Epoch;
  uint64_t LastTs = 0; ///< guarded by Mutex; clamps ts_us non-decreasing
};

} // namespace lna

#endif // LNA_OBS_EVENTJOURNAL_H
