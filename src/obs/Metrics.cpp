//===- Metrics.cpp - Counters and deterministic histograms ----------------===//

#include "obs/Metrics.h"

#include "support/Stats.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace lna {

namespace {
thread_local MetricsRegistry *CurMetrics = nullptr;
} // namespace

MetricsRegistry *currentMetrics() noexcept { return CurMetrics; }

MetricsRegistry *exchangeThreadMetrics(MetricsRegistry *R) noexcept {
  MetricsRegistry *Prev = CurMetrics;
  CurMetrics = R;
  return Prev;
}

MetricsScope::MetricsScope(MetricsRegistry &R) : Prev(CurMetrics) {
  CurMetrics = &R;
}
MetricsScope::~MetricsScope() { CurMetrics = Prev; }

uint64_t Histogram::quantile(double Q) const {
  if (!N)
    return 0;
  // Rank of the quantile in 1..N; ceil without going past N.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
  if (static_cast<double>(Rank) < Q * static_cast<double>(N))
    ++Rank;
  if (Rank < 1)
    Rank = 1;
  if (Rank > N)
    Rank = N;
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Rank) {
      uint64_t V = bucketUpperBound(B);
      if (V < Lo)
        V = Lo;
      if (V > Hi)
        V = Hi;
      return V;
    }
  }
  return Hi;
}

bool Histogram::operator==(const Histogram &O) const {
  return N == O.N && Total == O.Total && min() == O.min() &&
         max() == O.max() &&
         std::memcmp(Buckets, O.Buckets, sizeof(Buckets)) == 0;
}

Histogram Histogram::fromRaw(const uint64_t *Buckets, uint64_t N,
                             uint64_t Total, uint64_t Lo, uint64_t Hi) {
  Histogram H;
  std::memcpy(H.Buckets, Buckets, sizeof(H.Buckets));
  H.N = N;
  H.Total = Total;
  H.Lo = Lo;
  H.Hi = Hi;
  return H;
}

namespace {

/// Process-wide metric-name interner behind metricId(). A deque keeps
/// the name strings at stable addresses for the handles to point at.
struct MetricInterner {
  std::mutex M;
  std::deque<std::string> Names;
  std::unordered_map<std::string_view, uint32_t> Ids;
};

MetricInterner &interner() {
  static MetricInterner I;
  return I;
}

} // namespace

MetricId metricId(std::string_view Name) {
  MetricInterner &I = interner();
  std::lock_guard<std::mutex> Lock(I.M);
  auto It = I.Ids.find(Name);
  if (It != I.Ids.end())
    return MetricId(It->second, &I.Names[It->second]);
  uint32_t Id = static_cast<uint32_t>(I.Names.size());
  I.Names.emplace_back(Name);
  I.Ids.emplace(I.Names.back(), Id);
  return MetricId(Id, &I.Names.back());
}

void MetricsRegistry::addCounter(std::string_view Name, uint64_t Delta) {
  for (auto &C : Counters)
    if (C.first == Name) {
      C.second += Delta;
      return;
    }
  Counters.emplace_back(std::string(Name), Delta);
}

void MetricsRegistry::recordValue(std::string_view Name, uint64_t V) {
  for (auto &H : Histograms)
    if (H.first == Name) {
      H.second.record(V);
      return;
    }
  Histograms.emplace_back(std::string(Name), Histogram());
  Histograms.back().second.record(V);
}

void MetricsRegistry::addCounter(MetricId Id, uint64_t Delta) {
  if (Id.Id < CounterIdx.size()) {
    if (uint32_t Slot = CounterIdx[Id.Id]) {
      Counters[Slot - 1].second += Delta;
      return;
    }
  } else {
    CounterIdx.resize(Id.Id + 1, 0);
  }
  // First touch of this registry: resolve against entries the string
  // path (or deserialize) may already have created, else append --
  // exactly what addCounter(Name) would do, preserving first-seen order.
  for (size_t I = 0; I < Counters.size(); ++I)
    if (Counters[I].first == *Id.NamePtr) {
      CounterIdx[Id.Id] = static_cast<uint32_t>(I + 1);
      Counters[I].second += Delta;
      return;
    }
  Counters.emplace_back(*Id.NamePtr, Delta);
  CounterIdx[Id.Id] = static_cast<uint32_t>(Counters.size());
}

void MetricsRegistry::recordValue(MetricId Id, uint64_t V) {
  if (Id.Id < HistogramIdx.size()) {
    if (uint32_t Slot = HistogramIdx[Id.Id]) {
      Histograms[Slot - 1].second.record(V);
      return;
    }
  } else {
    HistogramIdx.resize(Id.Id + 1, 0);
  }
  for (size_t I = 0; I < Histograms.size(); ++I)
    if (Histograms[I].first == *Id.NamePtr) {
      HistogramIdx[Id.Id] = static_cast<uint32_t>(I + 1);
      Histograms[I].second.record(V);
      return;
    }
  Histograms.emplace_back(*Id.NamePtr, Histogram());
  HistogramIdx[Id.Id] = static_cast<uint32_t>(Histograms.size());
  Histograms.back().second.record(V);
}

uint64_t MetricsRegistry::counter(std::string_view Name) const {
  for (const auto &C : Counters)
    if (C.first == Name)
      return C.second;
  return 0;
}

const Histogram *MetricsRegistry::findHistogram(std::string_view Name) const {
  for (const auto &H : Histograms)
    if (H.first == Name)
      return &H.second;
  return nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  for (const auto &C : Other.Counters)
    addCounter(C.first, C.second);
  for (const auto &OH : Other.Histograms) {
    bool Found = false;
    for (auto &H : Histograms)
      if (H.first == OH.first) {
        H.second.merge(OH.second);
        Found = true;
        break;
      }
    if (!Found)
      Histograms.push_back(OH);
  }
}

std::string MetricsRegistry::renderText() const {
  std::string Out;
  char Buf[192];
  if (!Counters.empty()) {
    Out += "  counters:\n";
    for (const auto &C : Counters) {
      std::snprintf(Buf, sizeof(Buf), "    %-28s %12" PRIu64 "\n",
                    C.first.c_str(), C.second);
      Out += Buf;
    }
  }
  if (!Histograms.empty()) {
    std::snprintf(Buf, sizeof(Buf), "  histograms: %-17s %12s %8s %8s %8s\n",
                  "", "count", "p50", "p95", "max");
    Out += Buf;
    for (const auto &H : Histograms) {
      std::snprintf(Buf, sizeof(Buf),
                    "    %-28s %12" PRIu64 " %8" PRIu64 " %8" PRIu64
                    " %8" PRIu64 "\n",
                    H.first.c_str(), H.second.count(), H.second.quantile(0.50),
                    H.second.quantile(0.95), H.second.max());
      Out += Buf;
    }
  }
  return Out;
}

std::string MetricsRegistry::renderJSON() const {
  std::string Out = "{\"counters\":{";
  char Buf[96];
  bool First = true;
  for (const auto &C : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(C.first);
    Out += "\":";
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, C.second);
    Out += Buf;
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &H : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(H.first);
    Out += "\":{";
    std::snprintf(Buf, sizeof(Buf),
                  "\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
                  ",\"buckets\":{",
                  H.second.count(), H.second.sum(), H.second.min(),
                  H.second.max(), H.second.quantile(0.50),
                  H.second.quantile(0.95));
    Out += Buf;
    bool FirstB = true;
    const uint64_t *Bs = H.second.buckets();
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
      if (!Bs[B])
        continue;
      if (!FirstB)
        Out += ',';
      FirstB = false;
      std::snprintf(Buf, sizeof(Buf), "\"%" PRIu64 "\":%" PRIu64,
                    Histogram::bucketUpperBound(B), Bs[B]);
      Out += Buf;
    }
    Out += "}}";
  }
  Out += "}}\n";
  return Out;
}

// Serialized form (deterministic, self-delimiting, versioned):
//
//   metrics 1 <num-counters> <num-histograms>\n
//   c <value> <name-len>\n<name-bytes>
//   h <n> <total> <lo> <hi> <k> <bucket>:<count> ... <name-len>\n<name-bytes>
//
// Names are length-framed raw bytes (they may contain anything);
// histograms list only their k non-zero buckets as index:count pairs.
std::string MetricsRegistry::serialize() const {
  std::string Out = "metrics 1 ";
  Out += std::to_string(Counters.size());
  Out += ' ';
  Out += std::to_string(Histograms.size());
  Out += '\n';
  for (const auto &C : Counters) {
    Out += "c ";
    Out += std::to_string(C.second);
    Out += ' ';
    Out += std::to_string(C.first.size());
    Out += '\n';
    Out += C.first;
  }
  for (const auto &H : Histograms) {
    const Histogram &G = H.second;
    const uint64_t *Bs = G.buckets();
    unsigned K = 0;
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B)
      if (Bs[B])
        ++K;
    Out += "h ";
    Out += std::to_string(G.count());
    Out += ' ';
    Out += std::to_string(G.sum());
    // Raw Lo/Hi, not min()/max(): an empty histogram's Lo is UINT64_MAX
    // and must round-trip so later record() calls behave identically.
    Out += ' ';
    Out += std::to_string(G.count() ? G.min() : UINT64_MAX);
    Out += ' ';
    Out += std::to_string(G.max());
    Out += ' ';
    Out += std::to_string(K);
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
      if (!Bs[B])
        continue;
      Out += ' ';
      Out += std::to_string(B);
      Out += ':';
      Out += std::to_string(Bs[B]);
    }
    Out += ' ';
    Out += std::to_string(H.first.size());
    Out += '\n';
    Out += H.first;
  }
  return Out;
}

bool MetricsRegistry::deserialize(std::string_view Bytes) {
  Counters.clear();
  Histograms.clear();
  // Cached-handle slot maps refer to the cleared storage.
  CounterIdx.clear();
  HistogramIdx.clear();
  std::string S(Bytes);
  size_t Pos = 0;
  auto Fail = [this] {
    Counters.clear();
    Histograms.clear();
    CounterIdx.clear();
    HistogramIdx.clear();
    return false;
  };
  auto ReadName = [&S, &Pos](unsigned long long Len, std::string &Name) {
    if (Len > S.size() - Pos)
      return false;
    Name = S.substr(Pos, Len);
    Pos += Len;
    return true;
  };

  unsigned long long Ver = 0, NC = 0, NH = 0;
  int Used = 0;
  if (std::sscanf(S.c_str(), "metrics %llu %llu %llu\n%n", &Ver, &NC, &NH,
                  &Used) != 3 ||
      Ver != 1 || Used <= 0)
    return Fail();
  Pos = static_cast<size_t>(Used);

  for (unsigned long long I = 0; I < NC; ++I) {
    unsigned long long V = 0, Len = 0;
    Used = 0;
    if (std::sscanf(S.c_str() + Pos, "c %llu %llu\n%n", &V, &Len, &Used) != 2 ||
        Used <= 0)
      return Fail();
    Pos += static_cast<size_t>(Used);
    std::string Name;
    if (!ReadName(Len, Name))
      return Fail();
    Counters.emplace_back(std::move(Name), V);
  }

  for (unsigned long long I = 0; I < NH; ++I) {
    unsigned long long N = 0, Total = 0, Lo = 0, Hi = 0, K = 0;
    Used = 0;
    if (std::sscanf(S.c_str() + Pos, "h %llu %llu %llu %llu %llu%n", &N, &Total,
                    &Lo, &Hi, &K, &Used) != 5 ||
        Used <= 0)
      return Fail();
    Pos += static_cast<size_t>(Used);
    uint64_t Buckets[Histogram::NumBuckets] = {};
    for (unsigned long long P = 0; P < K; ++P) {
      unsigned long long B = 0, Count = 0;
      Used = 0;
      if (std::sscanf(S.c_str() + Pos, " %llu:%llu%n", &B, &Count, &Used) !=
              2 ||
          Used <= 0 || B >= Histogram::NumBuckets)
        return Fail();
      Pos += static_cast<size_t>(Used);
      Buckets[B] = Count;
    }
    unsigned long long Len = 0;
    Used = 0;
    if (std::sscanf(S.c_str() + Pos, " %llu\n%n", &Len, &Used) != 1 ||
        Used <= 0)
      return Fail();
    Pos += static_cast<size_t>(Used);
    std::string Name;
    if (!ReadName(Len, Name))
      return Fail();
    Histograms.emplace_back(std::move(Name),
                            Histogram::fromRaw(Buckets, N, Total, Lo, Hi));
  }
  if (Pos != S.size())
    return Fail();
  return true;
}

} // namespace lna
