//===- Metrics.cpp - Counters and deterministic histograms ----------------===//

#include "obs/Metrics.h"

#include "support/Stats.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace lna {

namespace {
thread_local MetricsRegistry *CurMetrics = nullptr;
} // namespace

MetricsRegistry *currentMetrics() noexcept { return CurMetrics; }

MetricsScope::MetricsScope(MetricsRegistry &R) : Prev(CurMetrics) {
  CurMetrics = &R;
}
MetricsScope::~MetricsScope() { CurMetrics = Prev; }

uint64_t Histogram::quantile(double Q) const {
  if (!N)
    return 0;
  // Rank of the quantile in 1..N; ceil without going past N.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
  if (static_cast<double>(Rank) < Q * static_cast<double>(N))
    ++Rank;
  if (Rank < 1)
    Rank = 1;
  if (Rank > N)
    Rank = N;
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Rank) {
      uint64_t V = bucketUpperBound(B);
      if (V < Lo)
        V = Lo;
      if (V > Hi)
        V = Hi;
      return V;
    }
  }
  return Hi;
}

bool Histogram::operator==(const Histogram &O) const {
  return N == O.N && Total == O.Total && min() == O.min() &&
         max() == O.max() &&
         std::memcmp(Buckets, O.Buckets, sizeof(Buckets)) == 0;
}

void MetricsRegistry::addCounter(std::string_view Name, uint64_t Delta) {
  for (auto &C : Counters)
    if (C.first == Name) {
      C.second += Delta;
      return;
    }
  Counters.emplace_back(std::string(Name), Delta);
}

void MetricsRegistry::recordValue(std::string_view Name, uint64_t V) {
  for (auto &H : Histograms)
    if (H.first == Name) {
      H.second.record(V);
      return;
    }
  Histograms.emplace_back(std::string(Name), Histogram());
  Histograms.back().second.record(V);
}

uint64_t MetricsRegistry::counter(std::string_view Name) const {
  for (const auto &C : Counters)
    if (C.first == Name)
      return C.second;
  return 0;
}

const Histogram *MetricsRegistry::findHistogram(std::string_view Name) const {
  for (const auto &H : Histograms)
    if (H.first == Name)
      return &H.second;
  return nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  for (const auto &C : Other.Counters)
    addCounter(C.first, C.second);
  for (const auto &OH : Other.Histograms) {
    bool Found = false;
    for (auto &H : Histograms)
      if (H.first == OH.first) {
        H.second.merge(OH.second);
        Found = true;
        break;
      }
    if (!Found)
      Histograms.push_back(OH);
  }
}

std::string MetricsRegistry::renderText() const {
  std::string Out;
  char Buf[192];
  if (!Counters.empty()) {
    Out += "  counters:\n";
    for (const auto &C : Counters) {
      std::snprintf(Buf, sizeof(Buf), "    %-28s %12" PRIu64 "\n",
                    C.first.c_str(), C.second);
      Out += Buf;
    }
  }
  if (!Histograms.empty()) {
    std::snprintf(Buf, sizeof(Buf), "  histograms: %-17s %12s %8s %8s %8s\n",
                  "", "count", "p50", "p95", "max");
    Out += Buf;
    for (const auto &H : Histograms) {
      std::snprintf(Buf, sizeof(Buf),
                    "    %-28s %12" PRIu64 " %8" PRIu64 " %8" PRIu64
                    " %8" PRIu64 "\n",
                    H.first.c_str(), H.second.count(), H.second.quantile(0.50),
                    H.second.quantile(0.95), H.second.max());
      Out += Buf;
    }
  }
  return Out;
}

std::string MetricsRegistry::renderJSON() const {
  std::string Out = "{\"counters\":{";
  char Buf[96];
  bool First = true;
  for (const auto &C : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(C.first);
    Out += "\":";
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, C.second);
    Out += Buf;
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &H : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += jsonEscape(H.first);
    Out += "\":{";
    std::snprintf(Buf, sizeof(Buf),
                  "\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
                  ",\"buckets\":{",
                  H.second.count(), H.second.sum(), H.second.min(),
                  H.second.max(), H.second.quantile(0.50),
                  H.second.quantile(0.95));
    Out += Buf;
    bool FirstB = true;
    const uint64_t *Bs = H.second.buckets();
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
      if (!Bs[B])
        continue;
      if (!FirstB)
        Out += ',';
      FirstB = false;
      std::snprintf(Buf, sizeof(Buf), "\"%" PRIu64 "\":%" PRIu64,
                    Histogram::bucketUpperBound(B), Bs[B]);
      Out += Buf;
    }
    Out += "}}";
  }
  Out += "}}\n";
  return Out;
}

} // namespace lna
