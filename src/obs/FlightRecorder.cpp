//===- FlightRecorder.cpp - Worker black-box span persistence -------------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

using namespace lna;

FlightRecorder::~FlightRecorder() { close(); }

bool FlightRecorder::open(const std::string &Path) {
  close();
  Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  if (::ftruncate(Fd, static_cast<off_t>(MapBytes)) != 0) {
    close();
    return false;
  }
  void *M =
      ::mmap(nullptr, MapBytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (M == MAP_FAILED) {
    close();
    return false;
  }
  Map = static_cast<char *>(M);
  Map[0] = '\0';
  return true;
}

void FlightRecorder::close() {
  if (Map) {
    ::munmap(Map, MapBytes);
    Map = nullptr;
  }
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Offset = 0;
  Full = false;
  Cursor = 0;
}

void FlightRecorder::append(const char *Data, size_t Len) {
  // The sentinel byte after the committed region needs one spare slot.
  if (Full || Offset + Len + 1 > MapBytes) {
    Full = true;
    return;
  }
  std::memcpy(Map + Offset, Data, Len);
  Offset += Len;
  // NUL sentinel: whatever stale bytes of a previous module sit beyond
  // the committed region must never parse as this module's frames.
  Map[Offset] = '\0';
}

void FlightRecorder::beginModule(const std::string &ModuleName) {
  if (!Map)
    return;
  // The black box describes one module at a time: the most recent one.
  Offset = 0;
  Full = false;
  Cursor = 0;
  Map[0] = '\0';
  char Hdr[64];
  int N = std::snprintf(Hdr, sizeof(Hdr), "lna-blackbox 1 %zu\n",
                        ModuleName.size());
  append(Hdr, static_cast<size_t>(N));
  append(ModuleName.data(), ModuleName.size());
}

namespace {

/// Writes \p V in decimal at \p Out followed by \p Suffix; returns one
/// past the suffix. std::to_chars, not snprintf: this runs at every
/// phase boundary of every module, and format-string parsing is the
/// bulk of snprintf's cost at that rate.
char *putNum(char *Out, uint64_t V, char Suffix) {
  auto [End, Ec] = std::to_chars(Out, Out + 20, V);
  (void)Ec; // 20 digits always fit a uint64_t
  *End = Suffix;
  return End + 1;
}

/// Overwrites the \p Width bytes before \p FieldEnd with \p V in
/// zero-padded decimal (the loader's %llu ignores the padding).
void patchNum(char *FieldEnd, int Width, uint64_t V) {
  for (int I = 0; I < Width; ++I) {
    FieldEnd[-1 - I] = static_cast<char>('0' + V % 10);
    V /= 10;
  }
}

} // namespace

void FlightRecorder::flush(const TraceSink &Sink) {
  if (!Map)
    return;
  uint64_t From = std::max(Cursor, Sink.oldestIndex());
  uint64_t Newest = Sink.numTotal();
  Cursor = Newest;
  if (From >= Newest || Full)
    return;
  // The frame is formatted straight into the mapping -- no bounce
  // buffer, so a flush touches only the map's tail page plus the
  // recorder itself. The header's count/length fields cannot be known
  // before the payload is written, so they start as '?' placeholders
  // (unparseable: a death mid-flush leaves a frame the loader drops as
  // torn) and are patched to zero-padded decimals afterwards. Only then
  // does the sentinel commit the frame.
  //
  // Header shape: "F ccccc llllll\n" (5-digit count, 6-digit length).
  char *Base = Map + Offset, *End = Map + MapBytes;
  char *P = Base;
  constexpr size_t HdrLen = 15;
  if (End - P < static_cast<ptrdiff_t>(HdrLen + 1)) {
    Full = true;
    return;
  }
  std::memcpy(P, "F ????? ??????\n", HdrLen);
  P += HdrLen;
  for (uint64_t I = From; I < Newest; ++I) {
    SpanRecord S = Sink.spanAt(I);
    size_t NameLen = S.Name ? std::strlen(S.Name) : 0;
    // Worst case: three 20-digit numbers, three separators, the name,
    // the newline, and the trailing sentinel byte.
    if (static_cast<size_t>(End - P) < 64 + NameLen + 2) {
      // Overflow drops the whole frame (the box keeps the oldest
      // frames): restore the sentinel the header overwrote.
      Full = true;
      Base[0] = '\0';
      return;
    }
    P = putNum(P, S.Start, ' ');
    P = putNum(P, S.Dur, ' ');
    P = putNum(P, S.Depth, ' ');
    std::memcpy(P, S.Name ? S.Name : "", NameLen);
    P += NameLen;
    *P++ = '\n';
  }
  patchNum(Base + 7, 5, Newest - From);
  patchNum(Base + 14, 6, static_cast<size_t>(P - (Base + HdrLen)));
  *P = '\0'; // sentinel: commits the frame
  Offset = static_cast<size_t>(P - Map);
}

FlightRecording lna::loadFlightRecording(const std::string &Path) {
  FlightRecording R;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return R;
  std::string Data;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, Got);
  std::fclose(F);

  // Header: "lna-blackbox 1 <name-len>\n<name>".
  size_t Pos = Data.find('\n');
  if (Pos == std::string::npos)
    return R;
  unsigned long long NameLen = 0;
  if (std::sscanf(Data.c_str(), "lna-blackbox 1 %llu", &NameLen) != 1)
    return R;
  size_t NameStart = Pos + 1;
  if (NameStart + NameLen > Data.size())
    return R; // torn header: name truncated by the death
  R.Module = Data.substr(NameStart, static_cast<size_t>(NameLen));
  R.Valid = true;
  Pos = NameStart + static_cast<size_t>(NameLen);

  // Frames, until the first torn or malformed one.
  while (Pos < Data.size()) {
    size_t Eol = Data.find('\n', Pos);
    if (Eol == std::string::npos)
      break;
    unsigned long long Count = 0, PayloadLen = 0;
    if (std::sscanf(Data.c_str() + Pos, "F %llu %llu", &Count, &PayloadLen) !=
        2)
      break;
    size_t Payload = Eol + 1;
    if (Payload + PayloadLen > Data.size())
      break; // torn frame: declared length runs past end-of-file
    // Parse the payload lines; a malformed payload invalidates only
    // this frame (and, being the writer's last, ends the recording).
    std::vector<FlightRecording::Span> Frame;
    size_t P = Payload, End = Payload + static_cast<size_t>(PayloadLen);
    bool Ok = true;
    for (unsigned long long I = 0; I < Count; ++I) {
      size_t LineEnd = Data.find('\n', P);
      if (LineEnd == std::string::npos || LineEnd >= End) {
        Ok = false;
        break;
      }
      unsigned long long Start = 0, Dur = 0;
      unsigned Depth = 0;
      int Used = 0;
      if (std::sscanf(Data.c_str() + P, "%llu %llu %u %n", &Start, &Dur,
                      &Depth, &Used) != 3 ||
          P + static_cast<size_t>(Used) > LineEnd) {
        Ok = false;
        break;
      }
      FlightRecording::Span S;
      S.Start = Start;
      S.Dur = Dur;
      S.Depth = Depth;
      S.Name = Data.substr(P + static_cast<size_t>(Used),
                           LineEnd - P - static_cast<size_t>(Used));
      Frame.push_back(std::move(S));
      P = LineEnd + 1;
    }
    if (!Ok || P != End)
      break;
    for (FlightRecording::Span &S : Frame)
      R.Spans.push_back(std::move(S));
    Pos = End;
  }
  return R;
}

std::string lna::summarizeFlightTail(const FlightRecording &R,
                                     size_t MaxSpans) {
  if (!R.Valid || R.Spans.empty() || MaxSpans == 0)
    return {};
  size_t First = R.Spans.size() > MaxSpans ? R.Spans.size() - MaxSpans : 0;
  std::string Out;
  char Buf[64];
  for (size_t I = First; I < R.Spans.size(); ++I) {
    const FlightRecording::Span &S = R.Spans[I];
    if (!Out.empty())
      Out += ", ";
    Out += S.Name;
    std::snprintf(Buf, sizeof(Buf), " +%" PRIu64 "us/%" PRIu64 "us", S.Start,
                  S.Dur);
    Out += Buf;
  }
  return Out;
}
