//===- Provenance.cpp - Constraint derivation witnesses -------------------===//

#include "obs/Provenance.h"

#include <cstdio>

namespace lna {

std::string renderConstraintPath(const std::vector<ExplainStep> &Path,
                                 std::string_view Indent) {
  std::string Out;
  char Buf[32];
  for (size_t I = 0; I < Path.size(); ++I) {
    Out += Indent;
    std::snprintf(Buf, sizeof(Buf), "%zu. ", I + 1);
    Out += Buf;
    Out += Path[I].Note.empty() ? "effect constraint" : Path[I].Note;
    if (Path[I].Loc.isValid()) {
      Out += " at ";
      Out += toString(Path[I].Loc);
    }
    Out += '\n';
  }
  return Out;
}

} // namespace lna
