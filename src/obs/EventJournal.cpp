//===- EventJournal.cpp - JSONL run-lifecycle event stream ----------------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "obs/EventJournal.h"

#include "support/Stats.h"
#include "support/Subprocess.h"

#include <fcntl.h>
#include <unistd.h>

using namespace lna;

EventJournal::~EventJournal() { close(); }

bool EventJournal::open(const std::string &Path) {
  close();
  Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  Epoch = std::chrono::steady_clock::now();
  LastTs = 0;
  return true;
}

void EventJournal::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

EventJournal::Event::Event(EventJournal *J, const char *Type) : J(J) {
  if (!J)
    return;
  Line = ",\"event\":\"";
  Line += jsonEscape(Type);
  Line += '"';
}

EventJournal::Event &EventJournal::Event::str(const char *Key,
                                              std::string_view Value) {
  if (J) {
    Line += ",\"";
    Line += jsonEscape(Key);
    Line += "\":\"";
    Line += jsonEscape(Value);
    Line += '"';
  }
  return *this;
}

EventJournal::Event &EventJournal::Event::num(const char *Key,
                                              uint64_t Value) {
  if (J) {
    Line += ",\"";
    Line += jsonEscape(Key);
    Line += "\":";
    Line += std::to_string(Value);
  }
  return *this;
}

EventJournal::Event &EventJournal::Event::flag(const char *Key, bool Value) {
  if (J) {
    Line += ",\"";
    Line += jsonEscape(Key);
    Line += "\":";
    Line += Value ? "true" : "false";
  }
  return *this;
}

EventJournal::Event::~Event() {
  if (J)
    J->writeLine(Line);
}

void EventJournal::writeLine(std::string &Line) {
  uint64_t Ts = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0)
    return;
  // Clamp against clock adjustments between the read and the lock so a
  // consumer can rely on the stream being totally ordered by ts_us.
  if (Ts < LastTs)
    Ts = LastTs;
  LastTs = Ts;
  std::string Out = "{\"ts_us\":";
  Out += std::to_string(Ts);
  Out += Line;
  Out += "}\n";
  // One write(2) per line: events from other threads never interleave.
  writeAll(Fd, Out);
}
