//===- Provenance.h - Constraint derivation witnesses ---------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vocabulary of the `--explain` layer. A failed `restrict` or
/// `confine?` check is, operationally, a successful CHECK-SAT query:
/// some element source reaches the scope's effect variable through a
/// chain of effect constraints. Provenance turns that chain into a
/// witness the paper would show a user: the constraint system stamps
/// every seed, edge, intersection, and conditional with the source
/// location and role of the program construct that generated it
/// (ConstraintSystem::setOrigin), and explainReach() replays the
/// reachability search with parent pointers to reconstruct the path
/// from the violated scope down to the conflicting access.
///
/// This header only defines the path representation and its renderer so
/// the obs library stays dependent on lna_support alone; the traversal
/// lives with the constraint graph in effects/ConstraintSystem.
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_PROVENANCE_H
#define LNA_OBS_PROVENANCE_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace lna {

/// One constraint on a derivation path: the source location of the
/// program construct that generated it and a note naming its role
/// ("read through pointer dereference", "effect of block flows into
/// enclosing expression", ...). Paths run from the violated scope down
/// to the conflicting access, whose step comes last.
struct ExplainStep {
  SourceLoc Loc;
  std::string Note;
};

/// Renders a path as numbered lines, one step per line, each prefixed
/// with \p Indent:
///   <indent>1. <note> at <line>:<col>
/// Steps with an unknown location omit the "at" suffix.
std::string renderConstraintPath(const std::vector<ExplainStep> &Path,
                                 std::string_view Indent = "  ");

} // namespace lna

#endif // LNA_OBS_PROVENANCE_H
