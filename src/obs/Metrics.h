//===- Metrics.h - Counters and deterministic histograms ------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural metrics of the analyses: counters plus log2-bucketed
/// histograms of the distributions that the paper's complexity claims
/// are about -- effect-set sizes, unification chain depths, CHECK-SAT
/// visit counts per query, constraint-graph out-degrees.
///
/// Everything here is *deterministic by construction* so that corpus
/// reports are byte-identical regardless of `--jobs`:
///
///  * metrics record structure (sizes, depths, visit counts), never
///    wall-clock time;
///  * histograms use power-of-two buckets, so merging is bucket-wise
///    addition -- associative and commutative -- and quantiles computed
///    from buckets do not depend on merge order;
///  * the registry keeps names in first-seen order (like SessionStats),
///    and the corpus runner merges per-module registries serially in
///    module order after the parallel fan-out.
///
/// Recording goes through the same thread-local scope idiom as
/// support/Budget.h and obs/Trace.h: a MetricsScope installs a registry
/// for the current thread, and the free functions obsCounter() /
/// obsHistogram() are a thread-local load and a branch when no registry
/// is installed -- hot paths record unconditionally at no cost when
/// observability is off.
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_METRICS_H
#define LNA_OBS_METRICS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lna {

/// A histogram over uint64 values with power-of-two buckets: bucket 0
/// holds the value 0 and bucket B >= 1 holds [2^(B-1), 2^B). Bucket
/// counts merge by addition, so merging is associative and commutative
/// and quantile estimates are independent of merge order.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  /// The bucket value \p V lands in.
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B;
  }
  /// The largest value bucket \p B can hold (its reported quantile
  /// value): 0 for bucket 0, 2^B - 1 otherwise.
  static uint64_t bucketUpperBound(unsigned B) {
    return B == 0 ? 0 : (B >= 64 ? UINT64_MAX : (uint64_t(1) << B) - 1);
  }

  void record(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++N;
    Total += V;
    if (V < Lo)
      Lo = V;
    if (V > Hi)
      Hi = V;
  }

  /// Bucket-wise addition; associative and commutative.
  void merge(const Histogram &O) {
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B] += O.Buckets[B];
    N += O.N;
    Total += O.Total;
    if (O.Lo < Lo)
      Lo = O.Lo;
    if (O.Hi > Hi)
      Hi = O.Hi;
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Total; }
  uint64_t min() const { return N ? Lo : 0; }
  uint64_t max() const { return N ? Hi : 0; }
  const uint64_t *buckets() const { return Buckets; }

  /// The upper bound of the bucket containing the ceil(Q*count)-th
  /// smallest value, clamped to [min, max]. Coarse (power-of-two
  /// resolution) but exactly reproducible across merge orders.
  uint64_t quantile(double Q) const;

  bool operator==(const Histogram &O) const;

  /// Reconstructs a histogram from previously serialized raw state (the
  /// result cache stores per-module registries; a deserialized histogram
  /// must merge and render exactly like the original). \p Buckets must
  /// point at NumBuckets counts. \p Lo / \p Hi are the raw stored fields
  /// (Lo is UINT64_MAX for an empty histogram).
  static Histogram fromRaw(const uint64_t *Buckets, uint64_t N, uint64_t Total,
                           uint64_t Lo, uint64_t Hi);

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t N = 0;
  uint64_t Total = 0;
  uint64_t Lo = UINT64_MAX;
  uint64_t Hi = 0;
};

class MetricsRegistry;

/// An interned metric name: a process-wide id resolved once (typically
/// into a function-local static at the call site) so hot-loop recording
/// indexes straight into the registry instead of linearly comparing
/// names per event. The id is registry-independent; each registry lazily
/// maps it to its own slot, so cached handles survive the per-module
/// registry swaps of the corpus runner.
class MetricId {
public:
  uint32_t id() const { return Id; }
  std::string_view name() const { return *NamePtr; }

private:
  friend MetricId metricId(std::string_view Name);
  friend class MetricsRegistry;
  MetricId(uint32_t Id, const std::string *NamePtr)
      : Id(Id), NamePtr(NamePtr) {}

  uint32_t Id;
  const std::string *NamePtr; ///< stable storage in the interner
};

/// Interns \p Name (thread-safe; idempotent).
MetricId metricId(std::string_view Name);

/// Named counters and histograms in first-seen order, with a
/// deterministic merge (same discipline as SessionStats).
class MetricsRegistry {
public:
  /// Find-or-create; new names append.
  void addCounter(std::string_view Name, uint64_t Delta);
  void recordValue(std::string_view Name, uint64_t V);

  /// Cached-handle fast path: O(1) after the handle's first touch of
  /// this registry. Appends exactly like the string overloads, so
  /// name order -- and therefore merge/text/JSON output -- is
  /// byte-identical whichever path records first.
  void addCounter(MetricId Id, uint64_t Delta);
  void recordValue(MetricId Id, uint64_t V);

  /// The counter's value, 0 if never recorded.
  uint64_t counter(std::string_view Name) const;
  /// The histogram, or nullptr if never recorded.
  const Histogram *findHistogram(std::string_view Name) const;

  bool empty() const { return Counters.empty() && Histograms.empty(); }

  /// Merges \p Other into this by name; unseen names append in
  /// \p Other's order. Histogram contents merge bucket-wise, so the
  /// result's *values* are independent of merge order (name order
  /// follows the merge sequence, which the corpus runner keeps in
  /// module order).
  void merge(const MetricsRegistry &Other);

  const std::vector<std::pair<std::string, uint64_t>> &counters() const {
    return Counters;
  }
  const std::vector<std::pair<std::string, Histogram>> &histograms() const {
    return Histograms;
  }

  /// Aligned text table: counters, then histograms with
  /// count/p50/p95/max columns.
  std::string renderText() const;
  /// {"counters":{...},"histograms":{name:{count,sum,min,max,p50,p95,
  /// buckets:{upper-bound:count,...}},...}}
  std::string renderJSON() const;

  /// A deterministic, self-delimiting byte encoding of the full registry
  /// state (names in order, counter values, raw histogram fields and
  /// non-zero buckets). deserialize() restores a registry that renders
  /// and merges identically; it returns false and leaves the registry
  /// empty when \p Bytes does not parse (truncation, version skew).
  std::string serialize() const;
  bool deserialize(std::string_view Bytes);

private:
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, Histogram>> Histograms;
  /// MetricId -> slot index + 1 (0 = not yet resolved against this
  /// registry). Indexes stay valid across appends; deserialize() clears
  /// them along with the slots.
  std::vector<uint32_t> CounterIdx;
  std::vector<uint32_t> HistogramIdx;
};

/// The registry the current thread's metrics record into, or nullptr.
MetricsRegistry *currentMetrics() noexcept;

/// Replaces the thread's current registry, returning the previous one.
/// The request-boundary reset primitive (see exchangeThreadTraceSink in
/// obs/Trace.h): pooled server threads scrub the slot around each
/// request so no ambient registry from earlier work can absorb a later
/// request's samples.
MetricsRegistry *exchangeThreadMetrics(MetricsRegistry *R) noexcept;

/// Installs a registry as the thread's current one for the scope's
/// lifetime (saving and restoring any enclosing registry).
class MetricsScope {
public:
  explicit MetricsScope(MetricsRegistry &R);
  ~MetricsScope();
  MetricsScope(const MetricsScope &) = delete;
  MetricsScope &operator=(const MetricsScope &) = delete;

private:
  MetricsRegistry *Prev;
};

/// Adds \p Delta to counter \p Name in the current thread's registry;
/// no-op (a thread-local load and a branch) when none is installed.
inline void obsCounter(std::string_view Name, uint64_t Delta = 1) {
  if (MetricsRegistry *R = currentMetrics())
    R->addCounter(Name, Delta);
}

/// Records \p V into histogram \p Name in the current thread's
/// registry; no-op when none is installed.
inline void obsHistogram(std::string_view Name, uint64_t V) {
  if (MetricsRegistry *R = currentMetrics())
    R->recordValue(Name, V);
}

/// Cached-handle variants for hot call sites:
/// \code
///   static const MetricId Visits = metricId("checksat-visits");
///   obsHistogram(Visits, N);
/// \endcode
inline void obsCounter(const MetricId &Id, uint64_t Delta = 1) {
  if (MetricsRegistry *R = currentMetrics())
    R->addCounter(Id, Delta);
}
inline void obsHistogram(const MetricId &Id, uint64_t V) {
  if (MetricsRegistry *R = currentMetrics())
    R->recordValue(Id, V);
}

} // namespace lna

#endif // LNA_OBS_METRICS_H
