//===- Trace.cpp - Span tracing with thread-local sinks -------------------===//

#include "obs/Trace.h"

#include "support/Stats.h"

#include <cinttypes>
#include <cstdio>

namespace lna {

namespace {
thread_local TraceSink *CurSink = nullptr;
} // namespace

TraceSink *currentTraceSink() noexcept { return CurSink; }

TraceSink *exchangeThreadTraceSink(TraceSink *S) noexcept {
  TraceSink *Prev = CurSink;
  CurSink = S;
  return Prev;
}

#ifndef LNA_OBS_DISABLE_TRACING
TraceScope::TraceScope(TraceSink &S) : Prev(CurSink) { CurSink = &S; }
TraceScope::~TraceScope() { CurSink = Prev; }
#endif

double traceClockMicrosPerTick() {
#if defined(__x86_64__)
  // Calibrate the TSC rate against the steady clock, once per process.
  // A ~2ms window bounds the error from the bracketing clock reads to a
  // few per-mille; the spin only runs when the first sink is built.
  static const double MPT = [] {
    using Clock = std::chrono::steady_clock;
    Clock::time_point T0 = Clock::now();
    uint64_t K0 = __rdtsc();
    while (Clock::now() - T0 < std::chrono::milliseconds(2)) {
    }
    Clock::time_point T1 = Clock::now();
    uint64_t K1 = __rdtsc();
    double Us = std::chrono::duration<double, std::micro>(T1 - T0).count();
    return K1 > K0 ? Us / static_cast<double>(K1 - K0) : 1e-3;
  }();
  return MPT;
#else
  using Period = std::chrono::steady_clock::period;
  return 1e6 * static_cast<double>(Period::num) /
         static_cast<double>(Period::den);
#endif
}

TraceSink::TraceSink(size_t Capacity)
    : Ring(Capacity ? Capacity : 1), EpochTicks(traceClockTicks()),
      MicrosPerTick(traceClockMicrosPerTick()) {}

void TraceSink::reset(size_t Capacity) {
  if (Capacity == 0)
    Capacity = 1;
  // Stale entries past Total are never read back, so the ring needs no
  // re-zeroing -- only a resize when the requested capacity changed.
  if (Ring.size() != Capacity)
    Ring.assign(Capacity, Event{});
  Total = 0;
  Depth = 0;
  EpochTicks = traceClockTicks();
}

uint64_t TraceSink::spansSince(uint64_t FromTotal,
                               std::vector<SpanRecord> &Out) const {
  uint64_t Oldest = Total > Ring.size() ? Total - Ring.size() : 0;
  if (FromTotal < Oldest)
    FromTotal = Oldest;
  for (uint64_t I = FromTotal; I < Total; ++I) {
    const Event &E = Ring[static_cast<size_t>(I % Ring.size())];
    Out.push_back({E.Name, E.Start, E.Dur, E.Depth});
  }
  return Total;
}

std::string TraceSink::renderChromeJSON() const {
  std::string Out;
  Out.reserve(numRecorded() * 96 + 64);
  Out += "{\"traceEvents\":[";
  // Oldest surviving span first. Spans land in the ring in completion
  // order; the viewer reconstructs nesting from ts/dur, so completion
  // order is fine, but a stable oldest-first order keeps the file
  // deterministic for a given set of recorded spans.
  size_t N = numRecorded();
  size_t First = Total > Ring.size()
                     ? static_cast<size_t>(Total % Ring.size())
                     : 0;
  char Buf[192];
  for (size_t I = 0; I < N; ++I) {
    const Event &E = Ring[(First + I) % Ring.size()];
    if (I)
      Out += ',';
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"cat\":\"lna\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64
                  ",\"pid\":1,\"tid\":1,\"args\":{\"depth\":%u}}",
                  jsonEscape(E.Name ? E.Name : "").c_str(), E.Start, E.Dur,
                  E.Depth);
    Out += Buf;
  }
  Out += "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":";
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, numDropped());
  Out += Buf;
  Out += "}\n";
  return Out;
}

} // namespace lna
