//===- Trace.cpp - Span tracing with thread-local sinks -------------------===//

#include "obs/Trace.h"

#include "support/Stats.h"

#include <cinttypes>
#include <cstdio>

namespace lna {

namespace {
thread_local TraceSink *CurSink = nullptr;
} // namespace

TraceSink *currentTraceSink() noexcept { return CurSink; }

#ifndef LNA_OBS_DISABLE_TRACING
TraceScope::TraceScope(TraceSink &S) : Prev(CurSink) { CurSink = &S; }
TraceScope::~TraceScope() { CurSink = Prev; }
#endif

TraceSink::TraceSink(size_t Capacity)
    : Ring(Capacity ? Capacity : 1), Epoch(std::chrono::steady_clock::now()) {}

std::string TraceSink::renderChromeJSON() const {
  std::string Out;
  Out.reserve(numRecorded() * 96 + 64);
  Out += "{\"traceEvents\":[";
  // Oldest surviving span first. Spans land in the ring in completion
  // order; the viewer reconstructs nesting from ts/dur, so completion
  // order is fine, but a stable oldest-first order keeps the file
  // deterministic for a given set of recorded spans.
  size_t N = numRecorded();
  size_t First = Total > Ring.size()
                     ? static_cast<size_t>(Total % Ring.size())
                     : 0;
  char Buf[192];
  for (size_t I = 0; I < N; ++I) {
    const Event &E = Ring[(First + I) % Ring.size()];
    if (I)
      Out += ',';
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"cat\":\"lna\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64
                  ",\"pid\":1,\"tid\":1,\"args\":{\"depth\":%u}}",
                  jsonEscape(E.Name ? E.Name : "").c_str(), E.Start, E.Dur,
                  E.Depth);
    Out += Buf;
  }
  Out += "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":";
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, numDropped());
  Out += Buf;
  Out += "}\n";
  return Out;
}

} // namespace lna
