//===- FleetTrace.cpp - Multi-process Chrome trace merging ----------------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "obs/FleetTrace.h"

#include "support/Stats.h"

#include <cinttypes>
#include <cstdio>

using namespace lna;

void FleetTraceBuilder::processName(uint32_t Pid, std::string_view Name) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                "\"args\":{\"name\":\"",
                Pid);
  std::string E = Buf;
  E += jsonEscape(Name);
  E += "\"}}";
  Events.push_back(std::move(E));
}

void FleetTraceBuilder::threadName(uint32_t Pid, uint32_t Tid,
                                   std::string_view Name) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                "\"args\":{\"name\":\"",
                Pid, Tid);
  std::string E = Buf;
  E += jsonEscape(Name);
  E += "\"}}";
  Events.push_back(std::move(E));
}

void FleetTraceBuilder::span(uint32_t Pid, uint32_t Tid, std::string_view Name,
                             uint64_t TsUs, uint64_t DurUs) {
  std::string E = "{\"name\":\"";
  E += jsonEscape(Name);
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "\",\"cat\":\"fleet\",\"ph\":\"X\",\"ts\":%" PRIu64
                ",\"dur\":%" PRIu64 ",\"pid\":%u,\"tid\":%u}",
                TsUs, DurUs, Pid, Tid);
  E += Buf;
  Events.push_back(std::move(E));
}

bool FleetTraceBuilder::mergeModuleTrace(const std::string &Path, uint32_t Pid,
                                         uint32_t Tid, uint64_t OffsetUs) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::string Data;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.append(Buf, Got);
  std::fclose(F);

  static const char ArrayKey[] = "{\"traceEvents\":[";
  if (Data.compare(0, sizeof(ArrayKey) - 1, ArrayKey) != 0)
    return false;
  size_t Pos = sizeof(ArrayKey) - 1;
  size_t Merged = 0;
  // renderChromeJSON emits each event in one fixed shape; scan it
  // strictly and bail (keeping nothing) on any surprise so a corrupt
  // file cannot inject garbage into the fleet trace.
  std::vector<std::string> Parsed;
  while (Pos < Data.size() && Data[Pos] == '{') {
    static const char NameKey[] = "{\"name\":\"";
    if (Data.compare(Pos, sizeof(NameKey) - 1, NameKey) != 0)
      return false;
    size_t NameStart = Pos + sizeof(NameKey) - 1;
    size_t NameEnd = NameStart;
    while (NameEnd < Data.size() && Data[NameEnd] != '"') {
      if (Data[NameEnd] == '\\')
        ++NameEnd; // skip the escaped character
      ++NameEnd;
    }
    if (NameEnd >= Data.size())
      return false;
    unsigned long long Ts = 0, Dur = 0;
    unsigned Depth = 0;
    if (std::sscanf(Data.c_str() + NameEnd,
                    "\",\"cat\":\"lna\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
                    "\"pid\":1,\"tid\":1,\"args\":{\"depth\":%u}}",
                    &Ts, &Dur, &Depth) != 3)
      return false;
    size_t ObjEnd = Data.find("}}", NameEnd);
    if (ObjEnd == std::string::npos)
      return false;
    std::string E = "{\"name\":\"";
    // The name is already escaped JSON string contents; keep it verbatim.
    E.append(Data, NameStart, NameEnd - NameStart);
    char Out[160];
    std::snprintf(Out, sizeof(Out),
                  "\",\"cat\":\"lna\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64
                  ",\"pid\":%u,\"tid\":%u,\"args\":{\"depth\":%u}}",
                  static_cast<uint64_t>(Ts) + OffsetUs,
                  static_cast<uint64_t>(Dur), Pid, Tid, Depth);
    E += Out;
    Parsed.push_back(std::move(E));
    ++Merged;
    Pos = ObjEnd + 2;
    if (Pos < Data.size() && Data[Pos] == ',')
      ++Pos;
    else
      break;
  }
  if (Pos >= Data.size() || Data[Pos] != ']')
    return false;
  for (std::string &E : Parsed)
    Events.push_back(std::move(E));
  (void)Merged;
  return true;
}

bool FleetTraceBuilder::write(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fputs("{\"traceEvents\":[", F) >= 0;
  for (size_t I = 0; I < Events.size() && Ok; ++I) {
    if (I)
      Ok = std::fputc(',', F) != EOF;
    Ok = Ok && std::fwrite(Events[I].data(), 1, Events[I].size(), F) ==
                   Events[I].size();
  }
  Ok = Ok && std::fputs("],\"displayTimeUnit\":\"ms\"}\n", F) >= 0;
  return std::fclose(F) == 0 && Ok;
}
