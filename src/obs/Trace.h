//===- Trace.h - Span tracing with thread-local sinks ---------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The span tracer of the observability layer. The per-phase sums of
/// support/Stats.h say *how long* a phase took; spans say *where inside
/// it* the time went: every AnalysisSession phase and the solver hot
/// paths (unification, effect normalization, CHECK-SAT DFS queries,
/// least-solution propagation, conditional resolution) open a RAII Span,
/// and a TraceSink collects the closed spans into a bounded ring buffer
/// exportable as Chrome trace_event JSON (chrome://tracing, Perfetto).
///
/// The design follows the thread-local scope idiom of support/Budget.h:
///
///  * a TraceScope installs a sink as the current thread's sink for its
///    lifetime (saving and restoring any enclosing sink), exactly like
///    BudgetScope -- sessions do not own tracing state, callers opt in;
///  * Span's constructor is a thread-local load and a branch when no
///    sink is installed: no clock reads, no allocation, nothing -- hot
///    paths can be instrumented unconditionally;
///  * defining LNA_OBS_DISABLE_TRACING compiles Span and TraceScope down
///    to empty types for builds that must not carry even the branch.
///
/// The ring buffer bounds memory for arbitrarily long analyses: when it
/// fills, the oldest spans are overwritten and counted as dropped (the
/// export records the drop count). Sinks are single-threaded by design:
/// the thread that installs the TraceScope records into it. The parallel
/// corpus runner gives every module analysis its own sink on whichever
/// worker runs it, so traces never interleave across modules.
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_TRACE_H
#define LNA_OBS_TRACE_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace lna {

/// Raw ticks of the span clock. On x86-64 this is the TSC -- a span
/// records two timestamps, and at the span densities the solver hot
/// paths produce, two clock_gettime round trips per span are the bulk
/// of a sink's recording cost. The containers this runs in all have
/// invariant TSC; elsewhere the steady clock is the tick source.
inline uint64_t traceClockTicks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Microseconds per traceClockTicks() tick: the steady clock's period
/// where that is the tick source, a once-per-process calibration of the
/// TSC against the steady clock on x86-64 (a few per-mille of accuracy,
/// plenty for trace timestamps).
double traceClockMicrosPerTick();

/// One recorded span, exported for incremental consumers (the worker
/// flight recorder drains newly closed spans at phase boundaries). The
/// name points at the string literal the Span was opened with.
struct SpanRecord {
  const char *Name = nullptr;
  uint64_t Start = 0;
  uint64_t Dur = 0;
  uint32_t Depth = 0;
};

/// Collects closed spans into a fixed-capacity ring buffer and renders
/// them as Chrome trace_event JSON. One sink per traced analysis; see
/// the file comment for the threading contract.
class TraceSink {
public:
  /// \p Capacity is the ring size in spans; once exceeded, the oldest
  /// spans are overwritten (and counted by numDropped()).
  explicit TraceSink(size_t Capacity = DefaultCapacity);

  /// Rewinds the sink to empty with a fresh epoch, reallocating only
  /// when \p Capacity differs from the current ring size. Lets the
  /// per-module runner reuse one sink instead of constructing a fresh
  /// ring (and churning the heap) for every module.
  void reset(size_t Capacity);

  /// Microseconds since this sink was created (the trace's time origin).
  uint64_t nowMicros() const {
    return static_cast<uint64_t>(
        static_cast<double>(traceClockTicks() - EpochTicks) * MicrosPerTick);
  }

  /// Appends one closed span. \p Name must outlive the sink (span names
  /// are string literals).
  void record(const char *Name, uint64_t StartMicros, uint64_t DurMicros,
              uint32_t Depth) {
    Ring[static_cast<size_t>(Total % Ring.size())] = {Name, StartMicros,
                                                      DurMicros, Depth};
    ++Total;
  }

  /// Spans currently held (min(recorded, capacity)).
  size_t numRecorded() const {
    return Total < Ring.size() ? static_cast<size_t>(Total) : Ring.size();
  }
  /// Spans overwritten because the ring was full.
  uint64_t numDropped() const {
    return Total < Ring.size() ? 0 : Total - Ring.size();
  }
  /// All spans ever recorded (held + dropped).
  uint64_t numTotal() const { return Total; }

  /// Appends the spans recorded after absolute span index \p FromTotal
  /// (oldest first; spans the ring has already overwritten are skipped)
  /// to \p Out and returns numTotal() -- feed that back as the next
  /// FromTotal to consume the span stream incrementally.
  uint64_t spansSince(uint64_t FromTotal, std::vector<SpanRecord> &Out) const;

  /// Absolute index of the oldest span still in the ring.
  uint64_t oldestIndex() const { return Total - numRecorded(); }

  /// The span at absolute index \p I, which must be in
  /// [oldestIndex(), numTotal()). Copy-free incremental access for the
  /// flight recorder's per-phase drains.
  SpanRecord spanAt(uint64_t I) const {
    const Event &E = Ring[static_cast<size_t>(I % Ring.size())];
    return {E.Name, E.Start, E.Dur, E.Depth};
  }

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one complete
  /// ("ph":"X") event per span, timestamps in microseconds since the
  /// sink's creation. Loadable by chrome://tracing and Perfetto.
  std::string renderChromeJSON() const;

  // Span bookkeeping (used by Span only).
  uint32_t enterSpan() { return Depth++; }
  void exitSpan() { --Depth; }

  static constexpr size_t DefaultCapacity = 1 << 15;

private:
  struct Event {
    const char *Name = nullptr;
    uint64_t Start = 0;
    uint64_t Dur = 0;
    uint32_t Depth = 0;
  };

  std::vector<Event> Ring;
  uint64_t Total = 0;
  uint32_t Depth = 0;
  uint64_t EpochTicks = 0;
  double MicrosPerTick = 0.0;
};

/// The sink the current thread's spans record into, or nullptr.
TraceSink *currentTraceSink() noexcept;

/// Replaces the thread's current sink, returning the previous one. The
/// reset primitive for request boundaries on pooled threads: a server
/// worker clears the slot (nullptr) before running a request and
/// restores the captured value after, so a sink leaked by earlier work
/// on the same thread can never receive a later request's spans.
/// TraceScope remains the right tool for scoped installation; this
/// exists for boundary scrubbing, where the code deliberately does not
/// own the sink being displaced.
TraceSink *exchangeThreadTraceSink(TraceSink *S) noexcept;

#ifndef LNA_OBS_DISABLE_TRACING

/// Installs a sink as the thread's current one for the scope's lifetime
/// (saving and restoring any enclosing sink).
class TraceScope {
public:
  explicit TraceScope(TraceSink &S);
  ~TraceScope();
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  TraceSink *Prev;
};

/// A RAII span: opened at construction, recorded into the current
/// thread's sink at destruction. With no sink installed both ends are a
/// thread-local load and a branch -- no clock read, no allocation -- so
/// hot paths (unification, CHECK-SAT queries) carry Spans
/// unconditionally. \p Name must be a string literal (it is stored, not
/// copied).
class Span {
public:
  explicit Span(const char *Name) : Name(Name) {
    if (TraceSink *S = currentTraceSink()) {
      Sink = S;
      Start = S->nowMicros();
      Depth = S->enterSpan();
    }
  }
  ~Span() {
    if (Sink) {
      Sink->exitSpan();
      Sink->record(Name, Start, Sink->nowMicros() - Start, Depth);
    }
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  TraceSink *Sink = nullptr;
  uint64_t Start = 0;
  uint32_t Depth = 0;
};

#else // LNA_OBS_DISABLE_TRACING

class TraceScope {
public:
  explicit TraceScope(TraceSink &) {}
};

class Span {
public:
  explicit Span(const char *) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
};

#endif // LNA_OBS_DISABLE_TRACING

} // namespace lna

#endif // LNA_OBS_TRACE_H
