//===- FleetTrace.h - Multi-process Chrome trace merging -------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the unified fleet trace: one Chrome trace_event JSON file that
/// stitches the per-module traces workers wrote under `--trace-dir`
/// together with supervisor-side lifecycle spans (dispatch, restart,
/// aggregate) into pid/tid lanes -- pid 0 is the supervisor, pid 1+slot
/// is each worker, and tids within a worker lane are module global
/// indices. Loading the merged file in chrome://tracing or Perfetto
/// shows the whole run as a gantt chart: which worker ran which module
/// when, where restarts and backoff gaps fell, and inside each module
/// row the phase/solver spans the worker recorded.
///
/// The per-module inputs are TraceSink::renderChromeJSON output, whose
/// byte format this repo controls, so the merger parses them with a
/// strict scanner (no general JSON parser) and keeps the already
/// escaped names verbatim. Module-local timestamps are shifted by the
/// module's dispatch time on the supervisor clock so all lanes share
/// one time origin.
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_FLEETTRACE_H
#define LNA_OBS_FLEETTRACE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lna {

/// Accumulates trace events and writes the merged file. Used by the
/// supervisor after the run completes; single-threaded.
class FleetTraceBuilder {
public:
  /// Names a pid lane ("supervisor", "worker 3") in the trace viewer.
  void processName(uint32_t Pid, std::string_view Name);
  /// Names a tid row within a pid lane (the module name).
  void threadName(uint32_t Pid, uint32_t Tid, std::string_view Name);

  /// Adds one complete span on the fleet clock. \p Name is raw text
  /// (escaped here).
  void span(uint32_t Pid, uint32_t Tid, std::string_view Name, uint64_t TsUs,
            uint64_t DurUs);

  /// Merges a per-module trace file written by renderChromeJSON into
  /// lane (\p Pid, \p Tid), shifting its module-local timestamps by
  /// \p OffsetUs onto the fleet clock. False when the file is missing
  /// or not in the expected format (nothing is merged then).
  bool mergeModuleTrace(const std::string &Path, uint32_t Pid, uint32_t Tid,
                        uint64_t OffsetUs);

  /// Writes {"traceEvents":[...]}. False on I/O failure.
  bool write(const std::string &Path) const;

  size_t numEvents() const { return Events.size(); }

private:
  std::vector<std::string> Events; ///< serialized trace_event objects
};

} // namespace lna

#endif // LNA_OBS_FLEETTRACE_H
