//===- FlightRecorder.h - Worker black-box span persistence ----*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker flight recorder: a black-box file each `--worker` process
/// keeps current with the tail of its TraceSink so the supervisor can
/// answer "what was the worker *doing*" after a SIGKILL or OOM death --
/// the one failure shape where the worker cannot report anything itself.
///
/// The recorder piggybacks on the spans the analysis already opens: at
/// every phase boundary (the same observer hook fault injection uses)
/// the worker drains the spans closed since the previous flush straight
/// out of the sink's ring and appends them as one length-framed frame.
///
/// Storage is a fixed-size file mapped once with mmap(2): a flush is a
/// formatted memcpy into the mapping plus a NUL sentinel after the last
/// committed byte -- zero syscalls on the per-phase hot path, which
/// keeps the recorder's overhead negligible even for sub-millisecond
/// modules. Durability against SIGKILL is the same as write(2)'s:
/// dirty pages of a shared file mapping live in the page cache and
/// survive the death of the process that wrote them. Only the frames a
/// module writes past the mapping's capacity are dropped (the box keeps
/// the oldest frames; capacity fits thousands of spans).
///
/// File format (text, single writer, one file per worker slot):
///
///   lna-blackbox 1 <name-len>\n<name>      -- per-module header
///   F <span-count> <payload-len>\n<payload> -- zero or more frames
///
/// where the payload is span-count lines of `<start> <dur> <depth>
/// <name>\n` (microseconds since the module's sink epoch). beginModule
/// rewinds to offset zero and rewrites the header, so the file always
/// describes the most recent module -- exactly the one in flight when a
/// worker dies. The NUL sentinel fences off whatever stale bytes of the
/// previous module sit beyond the committed region.
///
/// The loader is torn-tail-tolerant in the style of the PR 8 checkpoint
/// journal: a frame whose declared length runs past the sentinel, or
/// whose payload does not parse, ends the recording there and keeps
/// every complete frame before it. A missing or torn header yields an
/// invalid recording (Valid == false).
///
//===----------------------------------------------------------------------===//

#ifndef LNA_OBS_FLIGHTRECORDER_H
#define LNA_OBS_FLIGHTRECORDER_H

#include "obs/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lna {

/// Writer side, used inside `--worker` processes. Single-threaded like
/// the TraceSink it drains.
class FlightRecorder {
public:
  FlightRecorder() = default;
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// Opens (and truncates) the black-box file. False when it cannot be
  /// created; the recorder then stays inert.
  bool open(const std::string &Path);
  bool isOpen() const { return Fd >= 0; }
  void close();

  /// Starts recording \p ModuleName: rewinds the mapping and writes a
  /// fresh header. Call once per analysis attempt, before any flush.
  void beginModule(const std::string &ModuleName);

  /// Appends the spans \p Sink closed since the previous flush as one
  /// frame. Pure memory writes; cheap when nothing new closed.
  void flush(const TraceSink &Sink);

  /// Size of the mapped black-box file.
  static constexpr size_t MapBytes = 1 << 16;

private:
  void append(const char *Data, size_t Len);

  int Fd = -1;
  char *Map = nullptr;
  size_t Offset = 0;   ///< committed bytes of the current module
  bool Full = false;   ///< current module overflowed the mapping
  uint64_t Cursor = 0; ///< absolute span index already persisted
};

/// One recovered black box.
struct FlightRecording {
  struct Span {
    std::string Name;
    uint64_t Start = 0;
    uint64_t Dur = 0;
    uint32_t Depth = 0;
  };
  bool Valid = false;  ///< header parsed; Spans meaningful
  std::string Module;  ///< module the worker was analyzing
  std::vector<Span> Spans; ///< complete frames' spans, oldest first
};

/// Reads a black-box file, keeping every complete frame before the
/// first torn or malformed one. Missing/unreadable file or torn header
/// yields Valid == false.
FlightRecording loadFlightRecording(const std::string &Path);

/// Renders the tail of \p R (up to \p MaxSpans most recent spans) as a
/// compact one-line forensics summary for quarantine rows and stderr,
/// e.g. `solve +120us/45us, check-sat +180us/12us`. Empty when there is
/// nothing to show.
std::string summarizeFlightTail(const FlightRecording &R, size_t MaxSpans);

} // namespace lna

#endif // LNA_OBS_FLIGHTRECORDER_H
