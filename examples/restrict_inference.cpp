//===- restrict_inference.cpp - Section 5 inference demo ------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Restrict inference on a program full of `let` bindings: the analysis
// computes the unique maximum set of bindings that may soundly become
// `restrict` (Section 5) and prints the annotated program.
//
//   $ ./restrict_inference
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace lna;

int main() {
  const char *Source = R"(
var shared : ptr int;

fun reader(q : ptr int) : int { *q }

fun f(q : ptr int, w : ptr int) : int {
  // Sole access within the scope: restrictable.
  let a = q in *a;

  // The original name is also used inside the scope: must stay a let.
  let b = q in { *b; *q };

  // The pointer escapes into a global: must stay a let.
  let c = w in { shared := c; 0 };

  // Access through a callee, but only via the binder: restrictable.
  let d = w in reader(d);

  // Local copies inside the scope are allowed: restrictable.
  let e = q in let f2 = e in *f2
}
)";
  std::printf("Input:\n%s\n", Source);

  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Source, Ctx, Diags);
  if (!P) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }
  PipelineOptions Opts;
  Opts.PlaceConfines = false; // restrict inference only
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  if (!R) {
    std::printf("%s", Diags.render().c_str());
    return 1;
  }

  std::printf("Pointer-typed bindings: %zu\n", R->Alias.Binds.size());
  for (const BindInfo &BI : R->Alias.Binds) {
    if (!BI.IsPointer)
      continue;
    const auto *B = cast<BindExpr>(Ctx.expr(BI.Id));
    bool Restrictable = R->Inference.RestrictableBinds.count(BI.Id) != 0;
    std::printf("  %-4s (line %u): %s\n", Ctx.text(B->name()).c_str(),
                B->loc().Line,
                Restrictable ? "restrictable" : "must remain let");
  }

  PrintOverlay Overlay;
  Overlay.BindAsRestrict = R->Inference.RestrictableBinds;
  std::printf("\nAnnotated program (inferred restricts materialized):\n%s",
              AstPrinter(Ctx, &Overlay).print(R->Analyzed).c_str());
  return 0;
}
