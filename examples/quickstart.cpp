//===- quickstart.cpp - Five-minute tour of the lna library ---*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Quickstart: parse a program with explicit `restrict` annotations, run
// the annotation checker (the paper's Section 4 algorithm), and print the
// verdicts. Then break the annotation and watch the checker object.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace lna;

namespace {

void checkAndReport(const char *Title, const char *Source) {
  std::printf("---- %s ----\n%s\n", Title, Source);

  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> P = parse(Source, Ctx, Diags);
  if (!P) {
    std::printf("syntax errors:\n%s\n", Diags.render().c_str());
    return;
  }

  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  std::optional<PipelineResult> R = runPipeline(Ctx, *P, Opts, Diags);
  if (!R) {
    std::printf("type errors:\n%s\n", Diags.render().c_str());
    return;
  }

  if (R->Checks.ok()) {
    std::printf("=> all restrict/confine annotations verified\n\n");
    return;
  }
  std::printf("=> %zu violation(s):\n", R->Checks.Violations.size());
  for (const RestrictViolation &V : R->Checks.Violations)
    std::printf("   - %s\n", V.Message.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  // The paper's Section 2 example: p is the sole access to *q within the
  // scope, local copies are allowed.
  checkAndReport("valid restrict (local copy allowed)", R"(
fun f(q : ptr int) : int {
  restrict p = q in
    let r = p in *r
}
)");

  // Dereferencing the original name inside the scope is the canonical
  // violation.
  checkAndReport("invalid restrict (original name used in scope)", R"(
fun f(q : ptr int) : int {
  restrict p = q in { *p; *q }
}
)");

  // Copies of the restricted pointer must not escape the scope.
  checkAndReport("invalid restrict (copy escapes to a global)", R"(
var x : ptr int;
fun f(q : ptr int) : int {
  restrict p = q in { x := p; 0 }
}
)");

  // C99-style restrict parameters desugar to a restrict around the body.
  checkAndReport("valid restrict parameter (the do_with_lock shape)", R"(
var locks : array lock;
fun do_with_lock(restrict l : ptr lock) : int {
  spin_lock(l);
  work();
  spin_unlock(l)
}
fun foo(i : int) : int { do_with_lock(locks[i]) }
)");
  return 0;
}
