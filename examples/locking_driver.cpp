//===- locking_driver.cpp - The Figure 1 locking story --------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The paper's running example end to end: a device driver locking
// elements of a lock array. Shows the flow-sensitive lock analysis in the
// paper's three modes, the inferred confine annotations, and the
// per-site type errors that weak updates cause.
//
//   $ ./locking_driver
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "qual/LockAnalysis.h"

#include <cstdio>

using namespace lna;

namespace {

const char *Driver = R"(
struct Dev { lck : lock; opens : int; }
var devs : array Dev;
var registered : lock;

fun do_with_lock(l : ptr lock) : int {
  spin_lock(l);
  work();
  spin_unlock(l)
}

fun open_dev(minor : int) : int {
  spin_lock(devs[minor]->lck);
  work();
  spin_unlock(devs[minor]->lck)
}

fun probe() : int {
  spin_lock(registered);
  work();
  spin_unlock(registered)
}

fun ioctl(minor : int) : int {
  do_with_lock(devs[minor]->lck)
}
)";

void reportErrors(const char *Mode, const ASTContext &Ctx,
                  const PipelineResult &R, bool AllStrong) {
  LockAnalysisOptions Opts;
  Opts.AllStrong = AllStrong;
  LockAnalysisResult Res = analyzeLocks(Ctx, R, Opts);
  std::printf("%-28s %u type error(s)\n", Mode, Res.numErrors());
  for (const LockError &E : Res.Errors)
    std::printf("    line %u: cannot verify %s (lock state is '%s')\n",
                E.Loc.Line, E.IsAcquire ? "spin_lock" : "spin_unlock",
                lockStateName(E.Pre));
}

} // namespace

int main() {
  std::printf("Input driver module:\n%s\n", Driver);

  // Mode 1 and 3: plain CQual-style aliasing (no inference).
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Driver, Ctx, Diags);
    if (!P)
      return 1;
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    if (!R)
      return 1;
    reportErrors("no confine inference:", Ctx, *R, false);
    reportErrors("all updates strong:", Ctx, *R, true);
  }

  // Mode 2: confine (and restrict) inference.
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Driver, Ctx, Diags);
    if (!P)
      return 1;
    PipelineOptions Opts;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    if (!R)
      return 1;
    reportErrors("with confine inference:", Ctx, *R, false);

    std::printf("\nconfine? candidates inserted: %zu, succeeded: %zu\n",
                R->OptionalConfines.size(),
                R->Inference.SucceededConfines.size());

    // Render the program with the successful confines kept and failed
    // candidates dropped -- the annotated program the paper's Section 6
    // transformation would produce.
    PrintOverlay Overlay;
    Overlay.BindAsRestrict = R->Inference.RestrictableBinds;
    for (ExprId Id : R->OptionalConfines)
      if (!R->Inference.confineSucceeded(Id))
        Overlay.DropConfines.insert(Id);
    std::printf("\nProgram with inferred annotations:\n%s\n",
                AstPrinter(Ctx, &Overlay).print(R->Analyzed).c_str());
  }
  return 0;
}
