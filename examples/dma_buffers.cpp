//===- dma_buffers.cpp - User-defined typestate protocol demo -*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// CQual's hallmark is user-defined type qualifiers; the paper's
// evaluation instantiates it with locked/unlocked. This example runs the
// same restrict/confine machinery under a different flow-sensitive
// protocol -- DMA buffer mapping (dma_map / dma_sync / dma_unmap) -- to
// show that the strong-update recovery is protocol-independent.
//
//   $ ./dma_buffers
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "qual/Typestate.h"

#include <cstdio>

using namespace lna;

namespace {

const char *Driver = R"(
struct Ring { buf : lock; len : int; }
var rings : array Ring;

fun stream(i : int) : int {
  dma_map(rings[i]->buf);
  dma_sync(rings[i]->buf);
  work();
  dma_sync(rings[i]->buf);
  dma_unmap(rings[i]->buf)
}

fun bad_teardown(i : int) : int {
  // Genuine protocol bug: unmapping a buffer that was never mapped.
  dma_unmap(rings[i]->buf)
}
)";

uint32_t analyze(const char *Src, PipelineMode Mode, bool AllStrong) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  if (!P)
    return ~0u;
  PipelineOptions Opts;
  Opts.Mode = Mode;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  if (!R)
    return ~0u;
  TypestateOptions TSOpts;
  TSOpts.AllStrong = AllStrong;
  TypestateResult Res =
      analyzeTypestate(Ctx, *R, TypestateProtocol::dmaMapping(), TSOpts);
  for (const TypestateError &E : Res.Errors)
    std::printf("    line %u: %s cannot be verified (state '%s')\n",
                E.Loc.Line, E.Op.c_str(),
                TypestateProtocol::dmaMapping().stateName(E.Pre).c_str());
  return Res.numErrors();
}

} // namespace

int main() {
  std::printf("Input module:\n%s\n", Driver);
  std::printf("The dma-mapping protocol: unmapped --dma_map--> mapped;\n"
              "dma_sync requires mapped; mapped --dma_unmap--> unmapped.\n\n");

  std::printf("without confine inference:\n");
  uint32_t NoConf = analyze(Driver, PipelineMode::CheckAnnotations, false);
  std::printf("  => %u unverifiable site(s)\n\n", NoConf);

  std::printf("with confine inference:\n");
  uint32_t Conf = analyze(Driver, PipelineMode::Infer, false);
  std::printf("  => %u unverifiable site(s)\n\n", Conf);

  std::printf("all updates strong (upper bound):\n");
  uint32_t Strong = analyze(Driver, PipelineMode::CheckAnnotations, true);
  std::printf("  => %u unverifiable site(s)\n\n", Strong);

  std::printf("Confine inference eliminated %u spurious error(s); the "
              "remaining %u is the genuine bug in bad_teardown.\n",
              NoConf - Conf, Conf);
  return 0;
}
