//===- confine_scopes.cpp - Section 6.2 scope inference demo --*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Confine scope inference: candidates are inserted at every possible
// scope (the Section 7 block heuristic plus the Section 6.2 enclosing
// chain) and constraint solving decides which succeed. Demonstrates:
//
//  * a lock/unlock pair whose widest (function-body) scope succeeds;
//  * an escape in the middle of a pair that kills the wide scope but not
//    the narrow per-statement ones;
//  * a referential-transparency failure (the body writes what the
//    subject reads).
//
//   $ ./confine_scopes
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/ExprUtils.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace lna;

namespace {

void demo(const char *Title, const char *Source) {
  std::printf("==== %s ====\n%s\n", Title, Source);
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Source, Ctx, Diags);
  if (!P) {
    std::printf("%s", Diags.render().c_str());
    return;
  }
  PipelineOptions Opts;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  if (!R) {
    std::printf("%s", Diags.render().c_str());
    return;
  }

  AstPrinter SubjectPrinter(Ctx);
  std::printf("candidates: %zu\n", R->OptionalConfines.size());
  for (ExprId Id : R->OptionalConfines) {
    const auto *C = cast<ConfineExpr>(Ctx.expr(Id));
    const auto *Body = dyn_cast<BlockExpr>(C->body());
    std::printf("  confine? %-24s over %zu statement(s): %s\n",
                SubjectPrinter.print(C->subject()).c_str(),
                Body ? Body->stmts().size() : 1,
                R->Inference.confineSucceeded(Id) ? "succeeded" : "failed");
  }

  PrintOverlay Overlay;
  Overlay.BindAsRestrict = R->Inference.RestrictableBinds;
  for (ExprId Id : R->OptionalConfines)
    if (!R->Inference.confineSucceeded(Id))
      Overlay.DropConfines.insert(Id);
  std::printf("\nAnnotated program:\n%s\n",
              AstPrinter(Ctx, &Overlay).print(R->Analyzed).c_str());
}

} // namespace

int main() {
  demo("widest scope succeeds", R"(
var locks : array lock;
fun f(i : int) : int {
  spin_lock(locks[i]);
  if nondet() then work() else work();
  spin_unlock(locks[i])
}
)");

  demo("escape kills the wide scope", R"(
var locks : array lock;
var saved : ptr lock;
fun f(i : int) : int {
  spin_lock(locks[i]);
  saved := locks[i];
  work();
  spin_unlock(locks[i])
}
)");

  demo("body writes what the subject reads", R"(
var spare : lock;
var cur : ptr lock;
fun f() : int {
  spin_lock(*cur);
  cur := spare;
  spin_unlock(*cur)
}
)");
  return 0;
}
