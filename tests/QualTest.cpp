//===- QualTest.cpp - Flow-sensitive lock analysis tests ------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct Modes {
  uint32_t NoConfine = 0;
  uint32_t Confine = 0;
  uint32_t AllStrong = 0;
};

Modes analyze(const std::string &Src) {
  Modes Out;
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.render();
    Out.NoConfine = analyzeLocks(Ctx, *R, {}).numErrors();
    LockAnalysisOptions Strong;
    Strong.AllStrong = true;
    Out.AllStrong = analyzeLocks(Ctx, *R, Strong).numErrors();
  }
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    EXPECT_TRUE(P.has_value());
    PipelineOptions Opts;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.render();
    Out.Confine = analyzeLocks(Ctx, *R, {}).numErrors();
  }
  return Out;
}

TEST(Qual, JoinLattice) {
  EXPECT_EQ(joinState(LockState::Unlocked, LockState::Unlocked),
            LockState::Unlocked);
  EXPECT_EQ(joinState(LockState::Locked, LockState::Unlocked),
            LockState::Top);
  EXPECT_EQ(joinState(LockState::Bottom, LockState::Locked),
            LockState::Locked);
  EXPECT_EQ(joinState(LockState::Top, LockState::Unlocked), LockState::Top);
  EXPECT_STREQ(lockStateName(LockState::Locked), "locked");
}

TEST(Qual, BalancedSingletonIsClean) {
  Modes M = analyze("var g : lock;\n"
                    "fun f() : int { spin_lock(g); work(); spin_unlock(g) }");
  EXPECT_EQ(M.NoConfine, 0u);
  EXPECT_EQ(M.Confine, 0u);
  EXPECT_EQ(M.AllStrong, 0u);
}

TEST(Qual, DoubleLockErrorsEverywhere) {
  Modes M = analyze("var g : lock;\n"
                    "fun f() : int { spin_lock(g); spin_lock(g) }");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.Confine, 1u);
  EXPECT_EQ(M.AllStrong, 1u);
}

TEST(Qual, UnlockOfUnheldLockErrors) {
  Modes M = analyze("var g : lock;\nfun f() : int { spin_unlock(g) }");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.AllStrong, 1u);
}

TEST(Qual, ArrayPairIsWeakWithoutConfine) {
  Modes M = analyze(
      "var a : array lock;\n"
      "fun f(i : int) : int { spin_lock(a[i]); work(); spin_unlock(a[i]) }");
  EXPECT_EQ(M.NoConfine, 1u); // the unlock
  EXPECT_EQ(M.Confine, 0u);
  EXPECT_EQ(M.AllStrong, 0u);
}

TEST(Qual, RepeatedPairsCompoundWithoutConfine) {
  std::string Body;
  for (int I = 0; I < 3; ++I)
    Body += "  spin_lock(a[i]); work(); spin_unlock(a[i]);\n";
  Modes M = analyze("var a : array lock;\nfun f(i : int) : int {\n" + Body +
                    "  0\n}");
  EXPECT_EQ(M.NoConfine, 5u); // 2k-1
  EXPECT_EQ(M.Confine, 0u);
  EXPECT_EQ(M.AllStrong, 0u);
}

TEST(Qual, BranchesJoin) {
  // Lock held on one path only: join is top; the unlock errors in every
  // mode (a path-sensitivity limit the paper also hits).
  Modes M = analyze("var g : lock;\n"
                    "fun f() : int {\n"
                    "  if nondet() then { spin_lock(g) } else { work() };\n"
                    "  spin_unlock(g)\n}");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.Confine, 1u);
  EXPECT_EQ(M.AllStrong, 1u);
}

TEST(Qual, BothBranchesLockIsFine) {
  Modes M = analyze("var g : lock;\n"
                    "fun f() : int {\n"
                    "  if nondet() then { spin_lock(g) }"
                    " else { spin_lock(g) };\n"
                    "  spin_unlock(g)\n}");
  EXPECT_EQ(M.NoConfine, 0u);
  EXPECT_EQ(M.AllStrong, 0u);
}

TEST(Qual, LoopFixpointOnSingleton) {
  Modes M = analyze("var g : lock;\n"
                    "fun f() : int {\n"
                    "  while nondet() do {\n"
                    "    spin_lock(g); work(); spin_unlock(g) }\n}");
  EXPECT_EQ(M.NoConfine, 0u);
}

TEST(Qual, LoopWithHeldLockAcrossBackEdgeErrors) {
  // The lock is left held at the loop back-edge: re-locking errors.
  Modes M = analyze("var g : lock;\n"
                    "fun f() : int {\n"
                    "  while nondet() do { spin_lock(g) }\n}");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.AllStrong, 1u);
}

TEST(Qual, InterproceduralFlowThroughHelper) {
  Modes M = analyze("var g : lock;\n"
                    "fun lockit() : int { spin_lock(g) }\n"
                    "fun f() : int { lockit(); spin_unlock(g) }");
  EXPECT_EQ(M.NoConfine, 0u);
}

TEST(Qual, HelperDoubleLockAcrossCallsErrors) {
  Modes M = analyze("var g : lock;\n"
                    "fun lockit() : int { spin_lock(g) }\n"
                    "fun f() : int { lockit(); lockit() }");
  EXPECT_EQ(M.NoConfine, 1u); // the site inside lockit, counted once
}

TEST(Qual, EntryPointsAreAnalyzedIndependently) {
  // Two entries locking the same singleton: fresh store per entry, no
  // cross-contamination.
  Modes M = analyze("var g : lock;\n"
                    "fun e1() : int { spin_lock(g); spin_unlock(g) }\n"
                    "fun e2() : int { spin_lock(g); spin_unlock(g) }");
  EXPECT_EQ(M.NoConfine, 0u);
}

TEST(Qual, RecursionHavocsConservatively) {
  // Recursive helper: the analysis loses lock-state knowledge, so the
  // following unlock cannot be verified. Conservative, not unsound.
  Modes M = analyze("var g : lock;\n"
                    "fun r(n : int) : int {\n"
                    "  if n == 0 then 0 else r(n - 1) }\n"
                    "fun f() : int { spin_lock(g); r(3); spin_unlock(g) }");
  EXPECT_EQ(M.NoConfine, 1u);
}

TEST(Qual, StructArrayFieldNeedsConfine) {
  Modes M = analyze("struct D { lck : lock; }\nvar devs : array D;\n"
                    "fun f(i : int) : int {\n"
                    "  spin_lock(devs[i]->lck); work();"
                    " spin_unlock(devs[i]->lck) }");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.Confine, 0u);
}

TEST(Qual, SingletonStructFieldIsStrong) {
  Modes M = analyze("struct D { lck : lock; }\nvar d : D;\n"
                    "fun f() : int {\n"
                    "  spin_lock(d->lck); work(); spin_unlock(d->lck) }");
  EXPECT_EQ(M.NoConfine, 0u);
}

TEST(Qual, ExplicitRestrictParamRecoversStrongUpdate) {
  // No inference at all: the C99-style annotation alone recovers the
  // strong update in checking mode.
  Modes M = analyze("var a : array lock;\n"
                    "fun dwl(restrict l : ptr lock) : int {\n"
                    "  spin_lock(l); work(); spin_unlock(l) }\n"
                    "fun f(i : int) : int { dwl(a[i]) }");
  EXPECT_EQ(M.NoConfine, 0u);
}

TEST(Qual, ExplicitConfineRecoversStrongUpdate) {
  Modes M = analyze("var a : array lock;\n"
                    "fun f(i : int) : int {\n"
                    "  confine a[i] in {\n"
                    "    spin_lock(a[i]); work(); spin_unlock(a[i]) } }");
  EXPECT_EQ(M.NoConfine, 0u);
}

TEST(Qual, ConfineScopeExitJoinsStateBack) {
  // The lock is left HELD inside the confine; after the scope the
  // collection's state must reflect it (join), so a later unlock through
  // the array cannot be verified -- and neither can it be declared safe.
  Modes M = analyze("var a : array lock;\n"
                    "fun f(i : int) : int {\n"
                    "  confine a[i] in { spin_lock(a[i]) };\n"
                    "  spin_unlock(a[i])\n}");
  EXPECT_EQ(M.NoConfine, 1u);
}

TEST(Qual, SequencedAliasedLocksMatchPaperLimitation) {
  // lock a[i]; unlock a[j]: weak updates cannot verify the unlock; strong
  // updates can (i and j share the abstract location).
  Modes M = analyze("var a : array lock;\n"
                    "fun f(i : int, j : int) : int {\n"
                    "  spin_lock(a[i]); work(); spin_unlock(a[j]) }");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.Confine, 1u);
  EXPECT_EQ(M.AllStrong, 0u);
}

TEST(Qual, LockValueAssignmentLosesPrecisionWeakly) {
  // Overwriting a lock cell through a pointer with an unknown lock value.
  Modes M = analyze("var g : lock;\nvar h : lock;\n"
                    "fun f() : int {\n"
                    "  spin_lock(g);\n"
                    "  g := *h;\n"
                    "  spin_unlock(g)\n}");
  // g's state after the copy is h's (unlocked): the unlock errors.
  EXPECT_EQ(M.NoConfine, 1u);
}

TEST(Qual, ErrorRecordsCarrySiteInfo) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("var g : lock;\nfun f() : int { spin_unlock(g) }", Ctx,
                 Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  LockAnalysisResult Res = analyzeLocks(Ctx, *R, {});
  ASSERT_EQ(Res.numErrors(), 1u);
  EXPECT_FALSE(Res.Errors[0].IsAcquire);
  EXPECT_EQ(Res.Errors[0].Pre, LockState::Unlocked);
  EXPECT_TRUE(Res.Errors[0].Loc.isValid());
}

} // namespace
