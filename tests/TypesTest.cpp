//===- TypesTest.cpp - Type/location table unit tests ---------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alias/Types.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace lna;

namespace {

struct TypesFixture : ::testing::Test {
  LocTable Locs;
  TypeTable Types{Locs};
  StringInterner Interner;
};

//===----------------------------------------------------------------------===//
// LocTable
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, FreshLocationsAreDistinct) {
  LocId A = Locs.fresh();
  LocId B = Locs.fresh();
  EXPECT_FALSE(Locs.sameClass(A, B));
}

TEST_F(TypesFixture, SingleAllocSourceIsLinear) {
  LocId A = Locs.fresh(Symbol(), /*AllocSources=*/1);
  EXPECT_TRUE(Locs.isLinear(A));
}

TEST_F(TypesFixture, TwoAllocSourcesMergeToNonlinear) {
  LocId A = Locs.fresh(Symbol(), 1);
  LocId B = Locs.fresh(Symbol(), 1);
  Locs.unify(A, B);
  EXPECT_FALSE(Locs.isLinear(A));
  EXPECT_FALSE(Locs.isLinear(B));
}

TEST_F(TypesFixture, DescribedLocationMergedWithOneAllocStaysLinear) {
  // A parameter's pointee (0 sources) unified with one global (1 source):
  // still a single concrete cell.
  LocId Param = Locs.fresh(Symbol(), 0);
  LocId Global = Locs.fresh(Symbol(), 1);
  Locs.unify(Param, Global);
  EXPECT_TRUE(Locs.isLinear(Param));
}

TEST_F(TypesFixture, ArrayElementIsNonlinear) {
  LocId A = Locs.fresh(Symbol(), 1, /*ArrayElement=*/true);
  EXPECT_FALSE(Locs.isLinear(A));
}

TEST_F(TypesFixture, UntrackableIsNonlinear) {
  LocId A = Locs.fresh(Symbol(), 1);
  EXPECT_TRUE(Locs.isLinear(A));
  Locs.markUntrackable(A);
  EXPECT_FALSE(Locs.isLinear(A));
}

TEST_F(TypesFixture, AttributesSurviveUnificationEitherDirection) {
  LocId A = Locs.fresh(Symbol(), 0, true);
  LocId B = Locs.fresh(Symbol(), 1, false);
  Locs.markUntrackable(B);
  Locs.unify(A, B);
  const LocInfo &Info = Locs.info(A);
  EXPECT_TRUE(Info.ArrayElement);
  EXPECT_TRUE(Info.Untrackable);
  EXPECT_EQ(Info.AllocSources, 1);
}

TEST_F(TypesFixture, AllocSourcesSaturate) {
  LocId A = Locs.fresh(Symbol(), 2);
  LocId B = Locs.fresh(Symbol(), 2);
  Locs.unify(A, B);
  EXPECT_EQ(Locs.info(A).AllocSources, 2);
  Locs.addAllocSource(A);
  EXPECT_EQ(Locs.info(A).AllocSources, 2);
}

//===----------------------------------------------------------------------===//
// TypeTable: construction and unification (Figure 4a)
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, BaseTypesAreShared) {
  EXPECT_EQ(Types.find(Types.intType()), Types.find(Types.intType()));
  EXPECT_NE(Types.find(Types.intType()), Types.find(Types.lockType()));
}

TEST_F(TypesFixture, PointerUnificationMergesLocationsAndContents) {
  LocId L1 = Locs.fresh();
  LocId L2 = Locs.fresh();
  TypeId A = Types.ptr(L1, Types.intType());
  TypeId B = Types.ptr(L2, Types.intType());
  EXPECT_TRUE(Types.unify(A, B));
  EXPECT_TRUE(Locs.sameClass(L1, L2));
  EXPECT_EQ(Types.find(A), Types.find(B));
}

TEST_F(TypesFixture, NestedPointerUnificationIsDeep) {
  // ref l1(ref l2(int)) = ref l3(ref l4(int)) forces l1=l3 and l2=l4.
  LocId L1 = Locs.fresh(), L2 = Locs.fresh(), L3 = Locs.fresh(),
        L4 = Locs.fresh();
  TypeId A = Types.ptr(L1, Types.ptr(L2, Types.intType()));
  TypeId B = Types.ptr(L3, Types.ptr(L4, Types.intType()));
  EXPECT_TRUE(Types.unify(A, B));
  EXPECT_TRUE(Locs.sameClass(L1, L3));
  EXPECT_TRUE(Locs.sameClass(L2, L4));
}

TEST_F(TypesFixture, MismatchReportsButStillMerges) {
  LocId L = Locs.fresh();
  TypeId A = Types.ptr(L, Types.intType());
  EXPECT_FALSE(Types.unify(A, Types.intType()));
  // Queries stay stable after the failed unification.
  EXPECT_EQ(Types.find(A), Types.find(Types.intType()));
}

TEST_F(TypesFixture, IntAndLockDoNotUnify) {
  EXPECT_FALSE(Types.unify(Types.intType(), Types.lockType()));
}

TEST_F(TypesFixture, PtrAndArrayUnifyToArray) {
  LocId L1 = Locs.fresh();
  LocId L2 = Locs.fresh(Symbol(), 1, true);
  TypeId P = Types.ptr(L1, Types.lockType());
  TypeId A = Types.array(L2, Types.lockType());
  EXPECT_TRUE(Types.unify(P, A));
  EXPECT_EQ(Types.kind(P), TypeKind::Array);
  EXPECT_FALSE(Locs.isLinear(L1)); // element location became array-like
}

TEST_F(TypesFixture, UnifyIsIdempotentOnSameClass) {
  LocId L = Locs.fresh();
  TypeId A = Types.ptr(L, Types.intType());
  EXPECT_TRUE(Types.unify(A, A));
}

TEST_F(TypesFixture, RecursiveTypesUnifyAndTerminate) {
  // Two cyclic types: mu t. ref l (t).
  LocId L1 = Locs.fresh(), L2 = Locs.fresh();
  TypeId A = Types.ptr(L1, Types.intType());
  TypeId B = Types.ptr(L2, Types.intType());
  // Tie each to itself by unifying its element with itself through a
  // struct holding the pointer (simplest way to form a cycle here is
  // struct nodes).
  Symbol Tag = Interner.intern("Node");
  Symbol FieldNext = Interner.intern("next");
  TypeId S1 = Types.makeStruct(Tag);
  TypeId S2 = Types.makeStruct(Tag);
  LocId F1 = Locs.fresh(), F2 = Locs.fresh();
  Types.addField(S1, FieldNext, F1, Types.ptr(Locs.fresh(), S1));
  Types.addField(S2, FieldNext, F2, Types.ptr(Locs.fresh(), S2));
  EXPECT_TRUE(Types.unify(S1, S2));
  EXPECT_TRUE(Locs.sameClass(F1, F2));
  (void)A;
  (void)B;
}

TEST_F(TypesFixture, StructUnificationByFieldName) {
  Symbol Tag = Interner.intern("Dev");
  Symbol FLck = Interner.intern("lck");
  Symbol FNum = Interner.intern("num");
  TypeId S1 = Types.makeStruct(Tag);
  TypeId S2 = Types.makeStruct(Tag);
  LocId A1 = Locs.fresh(), B1 = Locs.fresh();
  LocId A2 = Locs.fresh(), B2 = Locs.fresh();
  Types.addField(S1, FLck, A1, Types.lockType());
  Types.addField(S1, FNum, B1, Types.intType());
  // S2 declares the fields in the opposite order.
  Types.addField(S2, FNum, B2, Types.intType());
  Types.addField(S2, FLck, A2, Types.lockType());
  EXPECT_TRUE(Types.unify(S1, S2));
  EXPECT_TRUE(Locs.sameClass(A1, A2));
  EXPECT_TRUE(Locs.sameClass(B1, B2));
  EXPECT_FALSE(Locs.sameClass(A1, B1));
}

TEST_F(TypesFixture, MutuallyRecursiveStructsTieTheKnot) {
  // Two instantiations of mu t. struct Node { next: ref(t), val: ref(int) }
  // where the recursive field is added *after* the struct node exists (the
  // knot-tying order instantiation uses). Unification must follow the
  // cycle exactly once and still merge the inner value locations.
  Symbol Tag = Interner.intern("Node");
  Symbol FNext = Interner.intern("next");
  Symbol FVal = Interner.intern("val");
  TypeId S1 = Types.makeStruct(Tag);
  TypeId S2 = Types.makeStruct(Tag);
  LocId N1 = Locs.fresh(), N2 = Locs.fresh();
  LocId V1 = Locs.fresh(), V2 = Locs.fresh();
  LocId P1 = Locs.fresh(), P2 = Locs.fresh();
  Types.addField(S1, FNext, N1, Types.ptr(P1, S1));
  Types.addField(S1, FVal, V1, Types.ptr(Locs.fresh(), Types.intType()));
  Types.addField(S2, FNext, N2, Types.ptr(P2, S2));
  Types.addField(S2, FVal, V2, Types.ptr(Locs.fresh(), Types.intType()));
  EXPECT_TRUE(Types.unify(S1, S2));
  EXPECT_TRUE(Locs.sameClass(N1, N2));
  EXPECT_TRUE(Locs.sameClass(P1, P2));
  EXPECT_TRUE(Locs.sameClass(V1, V2));
  // The recursive pointee of the merged type is the merged struct itself.
  const FieldCell *F = Types.findField(S1, FNext);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(Types.find(Types.pointeeType(F->Content)), Types.find(S2));
}

TEST_F(TypesFixture, CastUntrackablePropagatesThroughRecursiveStruct) {
  // An incompatible cast whose source is a cyclic struct must mark every
  // location on the cycle untrackable and terminate.
  Symbol Tag = Interner.intern("Node");
  TypeId S = Types.makeStruct(Tag);
  LocId FCell = Locs.fresh(Symbol(), 1);
  LocId PTo = Locs.fresh(Symbol(), 1);
  Types.addField(S, Interner.intern("next"), FCell, Types.ptr(PTo, S));
  LocId Lp = Locs.fresh(Symbol(), 1);
  TypeId P = Types.ptr(Lp, S);
  Types.castUnify(P, Types.ptr(Locs.fresh(), Types.lockType()));
  EXPECT_TRUE(Locs.info(Lp).Untrackable);
  EXPECT_TRUE(Locs.info(FCell).Untrackable);
  EXPECT_TRUE(Locs.info(PTo).Untrackable);
}

TEST_F(TypesFixture, AttributesApplyToRepresentativeThroughStaleIds) {
  // Attribute writes through a non-representative member must land on the
  // class representative, and reads through any member must see them.
  LocId A = Locs.fresh(Symbol(), 1);
  LocId B = Locs.fresh();
  LocId C = Locs.fresh();
  Locs.unify(A, B);
  Locs.unify(B, C);
  Locs.markUntrackable(C);   // through the last-merged member
  Locs.addAllocSource(B);    // through a mid-chain member
  Locs.markArrayElement(A);  // through the original member
  for (LocId L : {A, B, C}) {
    EXPECT_TRUE(Locs.info(L).Untrackable);
    EXPECT_TRUE(Locs.info(L).ArrayElement);
    EXPECT_EQ(Locs.info(L).AllocSources, 2);
    EXPECT_FALSE(Locs.isLinear(L));
  }
}

TEST_F(TypesFixture, StructTagMismatchReports) {
  TypeId S1 = Types.makeStruct(Interner.intern("A"));
  TypeId S2 = Types.makeStruct(Interner.intern("B"));
  EXPECT_FALSE(Types.unify(S1, S2));
}

TEST_F(TypesFixture, FindFieldLooksThroughUnification) {
  Symbol Tag = Interner.intern("Dev");
  Symbol FLck = Interner.intern("lck");
  TypeId S1 = Types.makeStruct(Tag);
  TypeId S2 = Types.makeStruct(Tag);
  LocId L1 = Locs.fresh();
  Types.addField(S1, FLck, L1, Types.lockType());
  // S2 has no fields; unify and look up through S2.
  EXPECT_TRUE(Types.unify(S2, S1));
  const FieldCell *F = Types.findField(S2, FLck);
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(Locs.sameClass(F->Loc, L1));
}

//===----------------------------------------------------------------------===//
// Casts
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, CompatibleCastUnifiesButMarksUntrackable) {
  LocId L1 = Locs.fresh(Symbol(), 1);
  LocId L2 = Locs.fresh();
  TypeId A = Types.ptr(L1, Types.lockType());
  TypeId B = Types.ptr(L2, Types.lockType());
  Types.castUnify(A, B);
  EXPECT_TRUE(Locs.sameClass(L1, L2));
  EXPECT_TRUE(Locs.info(L1).Untrackable);
}

TEST_F(TypesFixture, IncompatibleCastMarksEverythingUntrackable) {
  LocId L1 = Locs.fresh(Symbol(), 1);
  LocId Inner = Locs.fresh(Symbol(), 1);
  TypeId A = Types.ptr(L1, Types.ptr(Inner, Types.intType()));
  LocId L2 = Locs.fresh();
  TypeId B = Types.ptr(L2, Types.lockType());
  Types.castUnify(A, B);
  EXPECT_TRUE(Locs.info(L1).Untrackable);
  EXPECT_TRUE(Locs.info(Inner).Untrackable);
}

TEST_F(TypesFixture, IntToPointerCastUntracksThePointer) {
  LocId L = Locs.fresh(Symbol(), 1);
  TypeId P = Types.ptr(L, Types.lockType());
  Types.castUnify(Types.intType(), P);
  EXPECT_TRUE(Locs.info(L).Untrackable);
}

TEST_F(TypesFixture, CastNeverReportsFailure) {
  // castUnify has no failure mode; just exercise odd shapes.
  Types.castUnify(Types.intType(), Types.intType());
  Types.castUnify(Types.lockType(), Types.intType());
}

//===----------------------------------------------------------------------===//
// collectLocs
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, CollectLocsOnBaseTypesIsEmpty) {
  std::vector<LocId> Out;
  Types.collectLocs(Types.intType(), Out);
  Types.collectLocs(Types.lockType(), Out);
  EXPECT_TRUE(Out.empty());
}

TEST_F(TypesFixture, CollectLocsGathersNestedLocations) {
  LocId L1 = Locs.fresh(), L2 = Locs.fresh();
  TypeId T = Types.ptr(L1, Types.ptr(L2, Types.intType()));
  std::vector<LocId> Out;
  Types.collectLocs(T, Out);
  EXPECT_EQ(Out.size(), 2u);
  EXPECT_NE(std::find(Out.begin(), Out.end(), Locs.find(L1)), Out.end());
  EXPECT_NE(std::find(Out.begin(), Out.end(), Locs.find(L2)), Out.end());
}

TEST_F(TypesFixture, CollectLocsTerminatesOnCycles) {
  Symbol Tag = Interner.intern("Node");
  TypeId S = Types.makeStruct(Tag);
  LocId F = Locs.fresh();
  Types.addField(S, Interner.intern("next"), F, Types.ptr(Locs.fresh(), S));
  std::vector<LocId> Out;
  Types.collectLocs(S, Out);
  EXPECT_EQ(Out.size(), 2u); // field cell + pointer target
}

TEST_F(TypesFixture, ToStringRendersWithoutCrashing) {
  Symbol Tag = Interner.intern("Node");
  TypeId S = Types.makeStruct(Tag);
  Types.addField(S, Interner.intern("next"), Locs.fresh(),
                 Types.ptr(Locs.fresh(), S));
  std::string Str = Types.toString(S, Interner);
  EXPECT_NE(Str.find("Node"), std::string::npos);
  EXPECT_NE(Types.toString(Types.ptr(Locs.fresh(), Types.intType()), Interner)
                .find("ref rho"),
            std::string::npos);
}

} // namespace
