//===- SupportTest.cpp - Support library unit tests -----------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/Socket.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace lna;

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFind, SingletonsAreTheirOwnReps) {
  UnionFind UF;
  uint32_t A = UF.makeElement();
  uint32_t B = UF.makeElement();
  EXPECT_EQ(UF.find(A), A);
  EXPECT_EQ(UF.find(B), B);
  EXPECT_FALSE(UF.equivalent(A, B));
}

TEST(UnionFind, UnifyMergesClasses) {
  UnionFind UF;
  uint32_t A = UF.makeElement();
  uint32_t B = UF.makeElement();
  uint32_t C = UF.makeElement();
  UF.unify(A, B);
  EXPECT_TRUE(UF.equivalent(A, B));
  EXPECT_FALSE(UF.equivalent(A, C));
  UF.unify(B, C);
  EXPECT_TRUE(UF.equivalent(A, C));
}

TEST(UnionFind, UnifyIsIdempotent) {
  UnionFind UF;
  uint32_t A = UF.makeElement();
  uint32_t B = UF.makeElement();
  UF.unify(A, B);
  uint32_t Merges = UF.numMerges();
  UF.unify(A, B);
  UF.unify(B, A);
  EXPECT_EQ(UF.numMerges(), Merges);
}

TEST(UnionFind, RepresentativeIsStableWithinClass) {
  UnionFind UF;
  std::vector<uint32_t> Elems;
  for (int I = 0; I < 100; ++I)
    Elems.push_back(UF.makeElement());
  for (int I = 1; I < 100; ++I)
    UF.unify(Elems[0], Elems[I]);
  uint32_t Rep = UF.find(Elems[0]);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(UF.find(Elems[I]), Rep);
  EXPECT_EQ(UF.numMerges(), 99u);
}

TEST(UnionFind, ChainUnifyProducesOneClass) {
  UnionFind UF;
  std::vector<uint32_t> Elems;
  for (int I = 0; I < 64; ++I)
    Elems.push_back(UF.makeElement());
  for (int I = 0; I + 1 < 64; ++I)
    UF.unify(Elems[I], Elems[I + 1]);
  std::set<uint32_t> Reps;
  for (uint32_t E : Elems)
    Reps.insert(UF.find(E));
  EXPECT_EQ(Reps.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreAligned) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 32u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u);
  }
}

TEST(Arena, CreateConstructsObjects) {
  Arena A;
  struct Pair {
    int X, Y;
  };
  Pair *P = A.create<Pair>(Pair{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(Arena, LargeAllocationsGetOwnSlab) {
  Arena A;
  void *P = A.allocate(1 << 20, 8);
  ASSERT_NE(P, nullptr);
  // Earlier and later small allocations still work.
  void *Q = A.allocate(16, 8);
  ASSERT_NE(Q, nullptr);
  EXPECT_GE(A.bytesAllocated(), (1u << 20) + 16u);
}

TEST(Arena, ObjectsDoNotOverlap) {
  Arena A;
  std::vector<int *> Ptrs;
  for (int I = 0; I < 1000; ++I) {
    int *P = A.create<int>(I);
    Ptrs.push_back(P);
  }
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(*Ptrs[I], I);
}

TEST(Arena, ByteLimitAbortsWithMemoryCap) {
  Arena A;
  A.setByteLimit(64);
  void *P = A.allocate(32, 8);
  ASSERT_NE(P, nullptr);
  try {
    A.allocate(64, 8); // 32 + 64 > 64
    FAIL() << "expected AnalysisAbort";
  } catch (const AnalysisAbort &Abort) {
    EXPECT_EQ(Abort.kind(), FailureKind::MemoryCap);
    EXPECT_NE(std::string(Abort.what()).find("byte cap"), std::string::npos);
  }
  // The arena stays usable under its cap after a rejected request.
  EXPECT_NE(A.allocate(16, 8), nullptr);
}

TEST(Arena, ZeroByteLimitMeansUnlimited) {
  Arena A;
  A.setByteLimit(16);
  A.setByteLimit(0);
  EXPECT_NE(A.allocate(1024, 8), nullptr);
}

TEST(Arena, OversizeSingleAllocationIsRejected) {
  Arena A;
  try {
    // Far beyond the single-allocation cap: rejected up front instead
    // of tripping size arithmetic.
    A.allocate(size_t(1) << 40, 8);
    FAIL() << "expected AnalysisAbort";
  } catch (const AnalysisAbort &Abort) {
    EXPECT_EQ(Abort.kind(), FailureKind::MemoryCap);
  }
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, WorkerExceptionSurfacesOnWait) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 8; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.submit([] { throw std::runtime_error("worker blew up"); });
  try {
    Pool.wait();
    FAIL() << "expected the worker exception to rethrow on wait()";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "worker blew up");
  }
  // The error is consumed: the pool remains usable and a later wait()
  // with only healthy tasks succeeds.
  Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 9);
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins) {
  ThreadPool Pool(1); // serial: deterministic ordering of failures
  Pool.submit([] { throw std::runtime_error("first"); });
  Pool.submit([] { throw std::runtime_error("second"); });
  try {
    Pool.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, SameTextSameSymbol) {
  StringInterner SI;
  Symbol A = SI.intern("spin_lock");
  Symbol B = SI.intern("spin_lock");
  EXPECT_EQ(A, B);
}

TEST(StringInterner, DifferentTextDifferentSymbol) {
  StringInterner SI;
  EXPECT_NE(SI.intern("a"), SI.intern("b"));
}

TEST(StringInterner, EmptySymbolIsReserved) {
  StringInterner SI;
  Symbol S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(SI.intern(""), S);
  EXPECT_EQ(SI.text(S), "");
}

TEST(StringInterner, TextRoundTrips) {
  StringInterner SI;
  Symbol A = SI.intern("do_with_lock");
  EXPECT_EQ(SI.text(A), "do_with_lock");
}

TEST(StringInterner, ReferencesStayValidAcrossGrowth) {
  StringInterner SI;
  Symbol First = SI.intern("first");
  const std::string &Ref = SI.text(First);
  for (int I = 0; I < 10000; ++I)
    SI.intern("sym" + std::to_string(I));
  EXPECT_EQ(Ref, "first"); // deque storage: no reallocation of elements
  EXPECT_EQ(SI.size(), 10002u);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.range(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u); // all three values occur
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}

//===----------------------------------------------------------------------===//
// Diagnostics / SourceLoc
//===----------------------------------------------------------------------===//

TEST(Diagnostics, ErrorsAreCounted) {
  Diagnostics D;
  EXPECT_FALSE(D.hasErrors());
  D.warning({1, 1}, "w");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 3}, "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
}

TEST(Diagnostics, RenderIncludesSeverityAndLocation) {
  Diagnostics D;
  D.error({4, 7}, "unexpected token");
  D.note({}, "see here");
  std::string R = D.render();
  EXPECT_NE(R.find("error 4:7: unexpected token"), std::string::npos);
  EXPECT_NE(R.find("note <unknown>: see here"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  Diagnostics D;
  D.error({1, 1}, "e");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

TEST(SourceLoc, OrderingIsLineThenColumn) {
  SourceLoc A{1, 9};
  SourceLoc B{2, 1};
  SourceLoc C{2, 5};
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(B < C);
  EXPECT_FALSE(C < A);
}

TEST(SourceLoc, InvalidRendersUnknown) {
  EXPECT_EQ(toString(SourceLoc{}), "<unknown>");
  EXPECT_EQ(toString(SourceLoc{3, 14}), "3:14");
}

//===----------------------------------------------------------------------===//
// Socket substrate: EINTR, partial reads, short writes (the conditions
// the lna-serve wire protocol must survive)
//===----------------------------------------------------------------------===//

namespace {

// A sigaction-installed no-op handler WITHOUT SA_RESTART, so blocking
// syscalls on this thread genuinely return EINTR instead of resuming.
void installInterruptingHandler(int Sig) {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = [](int) {};
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: read(2) must see EINTR
  ASSERT_EQ(::sigaction(Sig, &SA, nullptr), 0);
}

} // namespace

TEST(Socket, ReadLineBlockingSurvivesEintrStorm) {
  installInterruptingHandler(SIGUSR1);
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);

  pthread_t Reader = pthread_self();
  std::atomic<bool> StopSignals{false};
  // One thread peppers the blocked reader with signals while another
  // dribbles the line out a few bytes at a time: every read(2) below
  // faces both EINTR and short reads, and readLineBlocking must hide
  // both.
  std::thread Signaler([&] {
    while (!StopSignals.load()) {
      pthread_kill(Reader, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread Writer([&] {
    const char *Msg = "hello from the other side\nsecond\n";
    for (const char *P = Msg; *P; ++P) {
      ASSERT_EQ(::write(Fds[1], P, 1), 1);
      if (*P == ' ')
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ::close(Fds[1]);
  });

  std::string Carry, Line;
  EXPECT_TRUE(readLineBlocking(Fds[0], Carry, Line));
  EXPECT_EQ(Line, "hello from the other side");
  EXPECT_TRUE(readLineBlocking(Fds[0], Carry, Line));
  EXPECT_EQ(Line, "second");
  // EOF with no trailing newline is a clean false, not a hang.
  EXPECT_FALSE(readLineBlocking(Fds[0], Carry, Line));

  StopSignals = true;
  Signaler.join();
  Writer.join();
  ::close(Fds[0]);
}

TEST(Socket, WriteAllCompletesUnderInjectedShortWrites) {
  ignoreSigPipe();
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);

  // 64 KiB through a 7-byte-per-write(2) straw: the continuation path
  // that real sockets exercise only under buffer pressure.
  std::string Payload;
  for (int I = 0; I < 64 * 1024; ++I)
    Payload.push_back(static_cast<char>('a' + I % 26));

  std::string Received;
  std::thread Reader([&] {
    std::string Chunk;
    while (true) {
      long N = readSome(Pair[1], Chunk);
      if (N <= 0)
        break;
    }
    Received = std::move(Chunk);
  });

  lna::detail::WriteChunkCapForTesting.store(7);
  bool Ok = writeAll(Pair[0], Payload);
  lna::detail::WriteChunkCapForTesting.store(0);
  EXPECT_TRUE(Ok);
  ::close(Pair[0]); // EOF for the reader
  Reader.join();
  EXPECT_EQ(Received, Payload);
  ::close(Pair[1]);
}

TEST(Socket, WriteAllReportsPeerHangup) {
  ignoreSigPipe();
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  ::close(Pair[1]);
  std::string Big(1 << 20, 'x');
  // EPIPE must surface as false (SIGPIPE is ignored process-wide).
  EXPECT_FALSE(writeAll(Pair[0], Big));
  ::close(Pair[0]);
}

TEST(Socket, LineBufferReassemblesArbitraryFragments) {
  LineBuffer LB;
  std::string Line;
  EXPECT_FALSE(LB.popLine(Line));
  LB.feed("ab");
  EXPECT_FALSE(LB.popLine(Line)); // incomplete
  LB.feed("c\nde");
  EXPECT_TRUE(LB.popLine(Line));
  EXPECT_EQ(Line, "abc");
  EXPECT_FALSE(LB.popLine(Line));
  LB.feed("f\n\n");
  EXPECT_TRUE(LB.popLine(Line));
  EXPECT_EQ(Line, "def");
  EXPECT_TRUE(LB.popLine(Line));
  EXPECT_EQ(Line, ""); // empty lines are real lines
  EXPECT_FALSE(LB.popLine(Line));
  EXPECT_EQ(LB.pending(), 0u);
}

TEST(Socket, LineBufferFillHandlesNonblockingAndEof) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  ASSERT_TRUE(setNonBlocking(Pair[0]));

  LineBuffer LB;
  std::string Line;
  // Nothing pending: fill() would block, which is "still open".
  EXPECT_TRUE(LB.fill(Pair[0]));
  EXPECT_FALSE(LB.popLine(Line));

  ASSERT_TRUE(writeAll(Pair[1], "first\nsec"));
  EXPECT_TRUE(LB.fill(Pair[0]));
  EXPECT_TRUE(LB.popLine(Line));
  EXPECT_EQ(Line, "first");
  EXPECT_FALSE(LB.popLine(Line)); // "sec" still incomplete

  ASSERT_TRUE(writeAll(Pair[1], "ond\n"));
  ::close(Pair[1]);
  // The final fill drains "ond\n" and then sees EOF.
  EXPECT_FALSE(LB.fill(Pair[0]));
  EXPECT_TRUE(LB.popLine(Line));
  EXPECT_EQ(Line, "second");
  ::close(Pair[0]);
}

TEST(Socket, ListenerAcceptsAndUnlinksOnClose) {
  std::string Path = testing::TempDir() + "lna_sock_unit.sock";
  ::unlink(Path.c_str());
  UnixListener L;
  std::string Error;
  ASSERT_TRUE(L.listen(Path, Error)) << Error;

  std::string ConnErr;
  int Client = connectUnix(Path, ConnErr);
  ASSERT_GE(Client, 0) << ConnErr;
  int Served = L.accept();
  ASSERT_GE(Served, 0);

  ASSERT_TRUE(writeAll(Client, "ping\n"));
  std::string Carry, Line;
  ASSERT_TRUE(readLineBlocking(Served, Carry, Line));
  EXPECT_EQ(Line, "ping");

  ::close(Client);
  ::close(Served);
  L.close();
  EXPECT_NE(::access(Path.c_str(), F_OK), 0)
      << "socket file must be unlinked on close";
}
