//===- SupportTest.cpp - Support library unit tests -----------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"
#include "support/ThreadPool.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

using namespace lna;

//===----------------------------------------------------------------------===//
// UnionFind
//===----------------------------------------------------------------------===//

TEST(UnionFind, SingletonsAreTheirOwnReps) {
  UnionFind UF;
  uint32_t A = UF.makeElement();
  uint32_t B = UF.makeElement();
  EXPECT_EQ(UF.find(A), A);
  EXPECT_EQ(UF.find(B), B);
  EXPECT_FALSE(UF.equivalent(A, B));
}

TEST(UnionFind, UnifyMergesClasses) {
  UnionFind UF;
  uint32_t A = UF.makeElement();
  uint32_t B = UF.makeElement();
  uint32_t C = UF.makeElement();
  UF.unify(A, B);
  EXPECT_TRUE(UF.equivalent(A, B));
  EXPECT_FALSE(UF.equivalent(A, C));
  UF.unify(B, C);
  EXPECT_TRUE(UF.equivalent(A, C));
}

TEST(UnionFind, UnifyIsIdempotent) {
  UnionFind UF;
  uint32_t A = UF.makeElement();
  uint32_t B = UF.makeElement();
  UF.unify(A, B);
  uint32_t Merges = UF.numMerges();
  UF.unify(A, B);
  UF.unify(B, A);
  EXPECT_EQ(UF.numMerges(), Merges);
}

TEST(UnionFind, RepresentativeIsStableWithinClass) {
  UnionFind UF;
  std::vector<uint32_t> Elems;
  for (int I = 0; I < 100; ++I)
    Elems.push_back(UF.makeElement());
  for (int I = 1; I < 100; ++I)
    UF.unify(Elems[0], Elems[I]);
  uint32_t Rep = UF.find(Elems[0]);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(UF.find(Elems[I]), Rep);
  EXPECT_EQ(UF.numMerges(), 99u);
}

TEST(UnionFind, ChainUnifyProducesOneClass) {
  UnionFind UF;
  std::vector<uint32_t> Elems;
  for (int I = 0; I < 64; ++I)
    Elems.push_back(UF.makeElement());
  for (int I = 0; I + 1 < 64; ++I)
    UF.unify(Elems[I], Elems[I + 1]);
  std::set<uint32_t> Reps;
  for (uint32_t E : Elems)
    Reps.insert(UF.find(E));
  EXPECT_EQ(Reps.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreAligned) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 32u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u);
  }
}

TEST(Arena, CreateConstructsObjects) {
  Arena A;
  struct Pair {
    int X, Y;
  };
  Pair *P = A.create<Pair>(Pair{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(Arena, LargeAllocationsGetOwnSlab) {
  Arena A;
  void *P = A.allocate(1 << 20, 8);
  ASSERT_NE(P, nullptr);
  // Earlier and later small allocations still work.
  void *Q = A.allocate(16, 8);
  ASSERT_NE(Q, nullptr);
  EXPECT_GE(A.bytesAllocated(), (1u << 20) + 16u);
}

TEST(Arena, ObjectsDoNotOverlap) {
  Arena A;
  std::vector<int *> Ptrs;
  for (int I = 0; I < 1000; ++I) {
    int *P = A.create<int>(I);
    Ptrs.push_back(P);
  }
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(*Ptrs[I], I);
}

TEST(Arena, ByteLimitAbortsWithMemoryCap) {
  Arena A;
  A.setByteLimit(64);
  void *P = A.allocate(32, 8);
  ASSERT_NE(P, nullptr);
  try {
    A.allocate(64, 8); // 32 + 64 > 64
    FAIL() << "expected AnalysisAbort";
  } catch (const AnalysisAbort &Abort) {
    EXPECT_EQ(Abort.kind(), FailureKind::MemoryCap);
    EXPECT_NE(std::string(Abort.what()).find("byte cap"), std::string::npos);
  }
  // The arena stays usable under its cap after a rejected request.
  EXPECT_NE(A.allocate(16, 8), nullptr);
}

TEST(Arena, ZeroByteLimitMeansUnlimited) {
  Arena A;
  A.setByteLimit(16);
  A.setByteLimit(0);
  EXPECT_NE(A.allocate(1024, 8), nullptr);
}

TEST(Arena, OversizeSingleAllocationIsRejected) {
  Arena A;
  try {
    // Far beyond the single-allocation cap: rejected up front instead
    // of tripping size arithmetic.
    A.allocate(size_t(1) << 40, 8);
    FAIL() << "expected AnalysisAbort";
  } catch (const AnalysisAbort &Abort) {
    EXPECT_EQ(Abort.kind(), FailureKind::MemoryCap);
  }
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, WorkerExceptionSurfacesOnWait) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 8; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.submit([] { throw std::runtime_error("worker blew up"); });
  try {
    Pool.wait();
    FAIL() << "expected the worker exception to rethrow on wait()";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "worker blew up");
  }
  // The error is consumed: the pool remains usable and a later wait()
  // with only healthy tasks succeeds.
  Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 9);
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins) {
  ThreadPool Pool(1); // serial: deterministic ordering of failures
  Pool.submit([] { throw std::runtime_error("first"); });
  Pool.submit([] { throw std::runtime_error("second"); });
  try {
    Pool.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, SameTextSameSymbol) {
  StringInterner SI;
  Symbol A = SI.intern("spin_lock");
  Symbol B = SI.intern("spin_lock");
  EXPECT_EQ(A, B);
}

TEST(StringInterner, DifferentTextDifferentSymbol) {
  StringInterner SI;
  EXPECT_NE(SI.intern("a"), SI.intern("b"));
}

TEST(StringInterner, EmptySymbolIsReserved) {
  StringInterner SI;
  Symbol S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(SI.intern(""), S);
  EXPECT_EQ(SI.text(S), "");
}

TEST(StringInterner, TextRoundTrips) {
  StringInterner SI;
  Symbol A = SI.intern("do_with_lock");
  EXPECT_EQ(SI.text(A), "do_with_lock");
}

TEST(StringInterner, ReferencesStayValidAcrossGrowth) {
  StringInterner SI;
  Symbol First = SI.intern("first");
  const std::string &Ref = SI.text(First);
  for (int I = 0; I < 10000; ++I)
    SI.intern("sym" + std::to_string(I));
  EXPECT_EQ(Ref, "first"); // deque storage: no reallocation of elements
  EXPECT_EQ(SI.size(), 10002u);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.range(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 3u); // all three values occur
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0, 10));
    EXPECT_TRUE(R.chance(10, 10));
  }
}

//===----------------------------------------------------------------------===//
// Diagnostics / SourceLoc
//===----------------------------------------------------------------------===//

TEST(Diagnostics, ErrorsAreCounted) {
  Diagnostics D;
  EXPECT_FALSE(D.hasErrors());
  D.warning({1, 1}, "w");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 3}, "e");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
}

TEST(Diagnostics, RenderIncludesSeverityAndLocation) {
  Diagnostics D;
  D.error({4, 7}, "unexpected token");
  D.note({}, "see here");
  std::string R = D.render();
  EXPECT_NE(R.find("error 4:7: unexpected token"), std::string::npos);
  EXPECT_NE(R.find("note <unknown>: see here"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  Diagnostics D;
  D.error({1, 1}, "e");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

TEST(SourceLoc, OrderingIsLineThenColumn) {
  SourceLoc A{1, 9};
  SourceLoc B{2, 1};
  SourceLoc C{2, 5};
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(B < C);
  EXPECT_FALSE(C < A);
}

TEST(SourceLoc, InvalidRendersUnknown) {
  EXPECT_EQ(toString(SourceLoc{}), "<unknown>");
  EXPECT_EQ(toString(SourceLoc{3, 14}), "3:14");
}
