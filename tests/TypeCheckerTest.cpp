//===- TypeCheckerTest.cpp - Type checker / alias analysis tests ---------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alias/TypeChecker.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct Checked {
  ASTContext Ctx;
  LocTable Locs;
  TypeTable Types{Locs};
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<AliasResult> Alias;
  std::set<ExprId> Optional;

  void run(std::string_view Src, bool Split = false) {
    Prog = parse(Src, Ctx, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.render();
    TypeChecker TC(Ctx, Types, Diags);
    TypeCheckOptions Opts;
    Opts.SplitLetLocations = Split;
    Opts.OptionalConfines = &Optional;
    Alias = TC.check(*Prog, Opts);
  }

  bool ok() const { return Alias.has_value(); }
};

TEST(TypeChecker, SimpleProgramChecks) {
  Checked C;
  C.run("var g : lock; fun f() : int { spin_lock(g); spin_unlock(g) }");
  EXPECT_TRUE(C.ok()) << C.Diags.render();
  EXPECT_EQ(C.Alias->LockSites.size(), 2u);
  EXPECT_TRUE(C.Alias->LockSites[0].IsAcquire);
  EXPECT_FALSE(C.Alias->LockSites[1].IsAcquire);
}

TEST(TypeChecker, UndefinedVariableIsAnError) {
  Checked C;
  C.run("fun f() : int { x }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, UndefinedFunctionIsAnError) {
  Checked C;
  C.run("fun f() : int { g() }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, ArityMismatchIsAnError) {
  Checked C;
  C.run("fun g(x : int) : int { x } fun f() : int { g(1, 2) }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, DerefOfNonPointerIsAnError) {
  Checked C;
  C.run("fun f(x : int) : int { *x }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, AssignThroughNonPointerIsAnError) {
  Checked C;
  C.run("fun f(x : int) : int { x := 1 }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, LockPrimitiveRequiresLockPointer) {
  Checked C;
  C.run("fun f(x : ptr int) : int { spin_lock(x) }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, LockPrimitiveOnIntIsAnError) {
  Checked C;
  C.run("fun f(x : int) : int { spin_lock(x) }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, UnknownFieldIsAnError) {
  Checked C;
  C.run("struct D { a : int; } var d : D; fun f() : int { *d->b }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, FieldAccessYieldsFieldPointer) {
  Checked C;
  C.run("struct D { lck : lock; } var d : D;\n"
        "fun f() : int { spin_lock(d->lck); spin_unlock(d->lck) }");
  EXPECT_TRUE(C.ok()) << C.Diags.render();
}

TEST(TypeChecker, RestrictOfNonPointerIsAnError) {
  Checked C;
  C.run("fun f() : int { restrict x = 1 in x }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, LetOfNonPointerIsFine) {
  Checked C;
  C.run("fun f() : int { let x = 1 in x + 1 }");
  EXPECT_TRUE(C.ok()) << C.Diags.render();
  ASSERT_EQ(C.Alias->Binds.size(), 1u);
  EXPECT_FALSE(C.Alias->Binds[0].IsPointer);
}

TEST(TypeChecker, PointerLetSplitsLocations) {
  Checked C;
  C.run("fun f() : int { let x = new 1 in *x }", /*Split=*/true);
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  ASSERT_EQ(C.Alias->Binds.size(), 1u);
  const BindInfo &BI = C.Alias->Binds[0];
  EXPECT_TRUE(BI.IsPointer);
  EXPECT_FALSE(C.Locs.sameClass(BI.Rho, BI.RhoPrime));
}

TEST(TypeChecker, PlainLetUnifiesInCheckingMode) {
  Checked C;
  C.run("fun f() : int { let x = new 1 in *x }", /*Split=*/false);
  ASSERT_TRUE(C.ok());
  const BindInfo &BI = C.Alias->Binds[0];
  EXPECT_TRUE(C.Locs.sameClass(BI.Rho, BI.RhoPrime));
}

TEST(TypeChecker, ExplicitRestrictStaysSplitInCheckingMode) {
  Checked C;
  C.run("fun f() : int { restrict x = new 1 in *x }", /*Split=*/false);
  ASSERT_TRUE(C.ok());
  const BindInfo &BI = C.Alias->Binds[0];
  EXPECT_TRUE(BI.ExplicitRestrict);
  EXPECT_FALSE(C.Locs.sameClass(BI.Rho, BI.RhoPrime));
}

TEST(TypeChecker, CallUnifiesArgumentWithParameter) {
  Checked C;
  C.run("var g : lock;\n"
        "fun h(l : ptr lock) : int { spin_lock(l); spin_unlock(l) }\n"
        "fun f() : int { h(g) }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  // The parameter's pointee location unified with g's cell: still linear.
  const FunSig &Sig = C.Alias->Funs.at(C.Ctx.intern("h"));
  LocId ParamLoc = C.Types.pointeeLoc(Sig.Params[0]);
  EXPECT_TRUE(C.Locs.isLinear(ParamLoc));
}

TEST(TypeChecker, TwoCallersMakeParameterNonlinear) {
  Checked C;
  C.run("var g1 : lock; var g2 : lock;\n"
        "fun h(l : ptr lock) : int { spin_lock(l); spin_unlock(l) }\n"
        "fun f() : int { h(g1); h(g2) }");
  ASSERT_TRUE(C.ok());
  const FunSig &Sig = C.Alias->Funs.at(C.Ctx.intern("h"));
  LocId ParamLoc = C.Types.pointeeLoc(Sig.Params[0]);
  EXPECT_FALSE(C.Locs.isLinear(ParamLoc));
}

TEST(TypeChecker, ArrayElementsShareOneNonlinearLocation) {
  Checked C;
  C.run("var a : array lock;\n"
        "fun f(i : int, j : int) : int {\n"
        "  spin_lock(a[i]); spin_unlock(a[j]) }");
  ASSERT_TRUE(C.ok());
  TypeId T1 = C.Alias->ExprType[C.Alias->LockSites[0].Arg->id()];
  TypeId T2 = C.Alias->ExprType[C.Alias->LockSites[1].Arg->id()];
  EXPECT_EQ(C.Types.pointeeLoc(T1), C.Types.pointeeLoc(T2));
  EXPECT_FALSE(C.Locs.isLinear(C.Types.pointeeLoc(T1)));
}

TEST(TypeChecker, StructArrayFieldsAreNonlinear) {
  Checked C;
  C.run("struct D { lck : lock; } var devs : array D;\n"
        "fun f(i : int) : int { spin_lock(devs[i]->lck);"
        " spin_unlock(devs[i]->lck) }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  TypeId T = C.Alias->ExprType[C.Alias->LockSites[0].Arg->id()];
  EXPECT_FALSE(C.Locs.isLinear(C.Types.pointeeLoc(T)));
}

TEST(TypeChecker, SingletonStructFieldIsLinear) {
  Checked C;
  C.run("struct D { lck : lock; } var d : D;\n"
        "fun f() : int { spin_lock(d->lck); spin_unlock(d->lck) }");
  ASSERT_TRUE(C.ok());
  TypeId T = C.Alias->ExprType[C.Alias->LockSites[0].Arg->id()];
  EXPECT_TRUE(C.Locs.isLinear(C.Types.pointeeLoc(T)));
}

TEST(TypeChecker, RecursiveStructChecks) {
  Checked C;
  C.run("struct Node { next : ptr Node; v : int; } var head : Node;\n"
        "fun f() : int { *(*head->next)->v }");
  EXPECT_TRUE(C.ok()) << C.Diags.render();
}

TEST(TypeChecker, AssignmentEncodesMayAliasUnification) {
  // Storing p into a cell aliased with q's cell unifies their pointees
  // (the (Assign) rule's unification-based alias analysis).
  Checked C;
  C.run("var cell : ptr lock; var g1 : lock; var g2 : lock;\n"
        "fun f() : int { cell := g1; cell := g2; 0 }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  TypeId G1 = C.Alias->Globals.at(C.Ctx.intern("g1"));
  TypeId G2 = C.Alias->Globals.at(C.Ctx.intern("g2"));
  EXPECT_TRUE(
      C.Locs.sameClass(C.Types.pointeeLoc(G1), C.Types.pointeeLoc(G2)));
  // ... and the merged location has two allocation sources.
  EXPECT_FALSE(C.Locs.isLinear(C.Types.pointeeLoc(G1)));
}

TEST(TypeChecker, IfBranchTypesMustMatch) {
  Checked C;
  C.run("var g : lock; fun f() : int { if nondet() then g else 1; 0 }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, IfBranchesUnifyPointees) {
  Checked C;
  C.run("var g1 : lock; var g2 : lock;\n"
        "fun f() : int { let p = if nondet() then g1 else g2 in 0 }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  TypeId G1 = C.Alias->Globals.at(C.Ctx.intern("g1"));
  TypeId G2 = C.Alias->Globals.at(C.Ctx.intern("g2"));
  EXPECT_TRUE(
      C.Locs.sameClass(C.Types.pointeeLoc(G1), C.Types.pointeeLoc(G2)));
}

TEST(TypeChecker, CastMarksUntrackable) {
  Checked C;
  C.run("var raw : ptr int;\n"
        "fun f() : int { let p = cast<ptr lock>(*raw) in 0 }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  const BindInfo &BI = C.Alias->Binds[0];
  EXPECT_TRUE(C.Locs.info(BI.Rho).Untrackable);
}

TEST(TypeChecker, RestrictParamRecordsInfo) {
  Checked C;
  C.run("fun f(restrict l : ptr lock) : int { spin_lock(l);"
        " spin_unlock(l) }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  ASSERT_EQ(C.Alias->ParamRestricts.size(), 1u);
  const ParamRestrictInfo &PR = C.Alias->ParamRestricts[0];
  EXPECT_FALSE(C.Locs.sameClass(PR.Rho, PR.RhoPrime));
}

TEST(TypeChecker, RestrictParamOfIntIsAnError) {
  Checked C;
  C.run("fun f(restrict x : int) : int { x }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, ExplicitConfineOccurrenceTyping) {
  Checked C;
  C.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  confine a[i] in { spin_lock(a[i]); spin_unlock(a[i]) } }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  ASSERT_EQ(C.Alias->Confines.size(), 1u);
  const ConfineSiteInfo &CSI = C.Alias->Confines[0];
  EXPECT_TRUE(CSI.Valid);
  EXPECT_FALSE(CSI.Optional);
  EXPECT_FALSE(C.Locs.sameClass(CSI.Rho, CSI.RhoPrime));
  // Both lock args were matched as occurrences and typed at rho'.
  int NumOccurrences = 0;
  for (uint32_t I = 0; I < C.Ctx.numExprs(); ++I)
    if (C.Alias->OccurrenceOf[I] != ~0u)
      ++NumOccurrences;
  EXPECT_EQ(NumOccurrences, 2);
  for (const LockSite &LS : C.Alias->LockSites) {
    TypeId T = C.Alias->ExprType[LS.Arg->id()];
    EXPECT_TRUE(C.Locs.sameClass(C.Types.pointeeLoc(T), CSI.RhoPrime));
  }
}

TEST(TypeChecker, ConfineOfCallSubjectIsAnError) {
  Checked C;
  C.run("var a : array lock;\n"
        "fun f() : int { confine a[nondet()] in { 0 } }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, ConfineOfIntSubjectIsAnError) {
  Checked C;
  C.run("fun f(x : int) : int { confine x in { 0 } }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, ShadowingDisablesOccurrenceMatching) {
  // Inside `let p = ... in ...`, the outer confine's subject p must not
  // match the rebound p.
  Checked C;
  C.run("var g1 : lock; var g2 : lock;\n"
        "fun f(p : ptr lock) : int {\n"
        "  confine p in {\n"
        "    spin_lock(p);\n"
        "    let p = g2 in *p;\n"
        "    spin_unlock(p)\n  }\n}");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  const ConfineSiteInfo &CSI = C.Alias->Confines[0];
  // The inner `*p` dereferences the let-bound p, not the confined name:
  // its pointee is g2's location, not rho'.
  const BindInfo &BI = C.Alias->Binds[0];
  EXPECT_FALSE(C.Locs.sameClass(BI.Rho, CSI.RhoPrime));
}

TEST(TypeChecker, GlobalRedefinitionIsAnError) {
  Checked C;
  C.run("var g : lock; var g : lock;");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, FunctionRedefinitionIsAnError) {
  Checked C;
  C.run("fun f() : int { 0 } fun f() : int { 1 }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, ReturnTypeMismatchIsAnError) {
  Checked C;
  C.run("var g : lock; fun f() : int { g }");
  EXPECT_FALSE(C.ok());
}

TEST(TypeChecker, MutualRecursionChecks) {
  Checked C;
  C.run("fun even(n : int) : int { if n == 0 then 1 else odd(n - 1) }\n"
        "fun odd(n : int) : int { if n == 0 then 0 else even(n - 1) }");
  EXPECT_TRUE(C.ok()) << C.Diags.render();
}

TEST(TypeChecker, NewArrayElementIsNonlinear) {
  Checked C;
  C.run("fun f() : int { let a = newarray 0 in *a[1] }");
  ASSERT_TRUE(C.ok()) << C.Diags.render();
  const BindInfo &BI = C.Alias->Binds[0];
  EXPECT_FALSE(C.Locs.isLinear(BI.Rho));
}

} // namespace
