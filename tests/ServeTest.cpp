//===- ServeTest.cpp - Resident daemon and invocation-library tests -------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Covers the resident-service stack: the strict JSON request parser, the
// hot-tier LRU, the invocation library's flag parsing / cache-key
// construction / byte-identity guarantees, the cross-request
// observability-isolation regression, and the lna-serve daemon end to
// end over a real Unix-domain socket against the real lna-analyze
// binary (byte-identical replies, hot/cold/bypass attribution, warm
// restart, concurrent clients, protocol errors).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/HotStore.h"
#include "serve/Invocation.h"
#include "serve/Json.h"
#include "support/Socket.h"
#include "support/Stats.h"
#include "support/Subprocess.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace lna;

namespace {

std::string fixturePath(const std::string &Name) {
  return std::string(LNA_SERVE_FIXTURE_DIR) + "/" + Name;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string tempDir(const std::string &Stem) {
  std::string Dir = testing::TempDir() + Stem + "." + std::to_string(getpid());
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Parses CLI-spelled flags into InvocationOptions via the daemon-side
/// parser configuration; fails the test on a parse error.
InvocationOptions optsFor(const std::vector<std::string> &Flags) {
  InvocationArgParser P;
  std::string Err;
  EXPECT_EQ(P.parseAll(Flags, Err), 0) << Err;
  return P.Opts;
}

//===----------------------------------------------------------------------===//
// JSON request parser
//===----------------------------------------------------------------------===//

TEST(ServeJson, ParsesScalarsAndStructure) {
  auto V = JsonValue::parse(
      " {\"s\":\"x\",\"n\":-2.5e1,\"t\":true,\"f\":false,\"z\":null,"
      "\"a\":[1,\"two\",[3]],\"o\":{\"k\":0}} ");
  ASSERT_TRUE(V.has_value());
  ASSERT_NE(V->field("s"), nullptr);
  EXPECT_EQ(*V->field("s")->asString(), "x");
  EXPECT_EQ(V->field("n")->asNumber(), -25.0);
  EXPECT_EQ(V->field("t")->asBool(), true);
  EXPECT_EQ(V->field("f")->asBool(), false);
  EXPECT_TRUE(V->field("z")->isNull());
  const std::vector<JsonValue> *A = V->field("a")->asArray();
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->size(), 3u);
  EXPECT_EQ((*A)[0].asNumber(), 1.0);
  EXPECT_EQ(*(*A)[1].asString(), "two");
  EXPECT_EQ(V->field("o")->field("k")->asNumber(), 0.0);
  // Type-mismatch accessors read as absence, never throw.
  EXPECT_EQ(V->field("s")->asNumber(), std::nullopt);
  EXPECT_EQ(V->field("n")->asString(), nullptr);
  EXPECT_EQ(V->field("missing"), nullptr);
}

TEST(ServeJson, DecodesStringEscapes) {
  auto V = JsonValue::parse(R"({"e":"a\"b\\c\/d\n\t\r\b\f","u":"\u0041\u00e9",
                               "sp":"\ud83d\ude00"})");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V->field("e")->asString(), "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(*V->field("u")->asString(), "A\xc3\xa9");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(*V->field("sp")->asString(), "\xf0\x9f\x98\x80");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"k\":}").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"k\" 1}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("'single'").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"bad\":\"\\x41\"}").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"half\":\"\\ud83d\"}").has_value());
  // A raw control character inside a string is a syntax error.
  EXPECT_FALSE(JsonValue::parse("{\"c\":\"a\nb\"}").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_FALSE(JsonValue::parse("01").has_value());
}

TEST(ServeJson, BoundsNestingDepth) {
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::parse(Deep).has_value());
  std::string Shallow = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_TRUE(JsonValue::parse(Shallow).has_value());
}

TEST(ServeJson, DuplicateKeysFirstWins) {
  auto V = JsonValue::parse("{\"k\":1,\"k\":2}");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->field("k")->asNumber(), 1.0);
}

//===----------------------------------------------------------------------===//
// Hot store
//===----------------------------------------------------------------------===//

TEST(ServeHotStore, LruEvictsLeastRecentlyUsed) {
  HotStore Hot(2);
  InvocationResult R;
  R.Out = "one";
  Hot.put("a-1", R, nullptr);
  R.Out = "two";
  Hot.put("a-2", R, nullptr);
  // Touch a-1 so a-2 is now the LRU victim.
  ASSERT_TRUE(Hot.get("a-1").has_value());
  R.Out = "three";
  Hot.put("a-3", R, nullptr);
  EXPECT_EQ(Hot.size(), 2u);
  EXPECT_EQ(Hot.evictions(), 1u);
  EXPECT_FALSE(Hot.get("a-2").has_value());
  ASSERT_TRUE(Hot.get("a-1").has_value());
  EXPECT_EQ(Hot.get("a-1")->Out, "one");
  EXPECT_EQ(Hot.get("a-3")->Out, "three");
}

TEST(ServeHotStore, CountsHitsAndMisses) {
  HotStore Hot(4);
  EXPECT_FALSE(Hot.get("a-x").has_value());
  InvocationResult R;
  R.Exit = 2;
  R.Out = "body";
  R.Err = "errs";
  Hot.put("a-x", R, nullptr);
  auto Got = Hot.get("a-x");
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Got->Exit, 2);
  EXPECT_EQ(Got->Err, "errs");
  EXPECT_EQ(Hot.hits(), 1u);
  EXPECT_EQ(Hot.misses(), 1u);
  EXPECT_EQ(Hot.retainedSessions(), 0u);
}

//===----------------------------------------------------------------------===//
// Invocation flag surface
//===----------------------------------------------------------------------===//

TEST(ServeInvocation, ParserPreservesCliErrorText) {
  InvocationArgParser P;
  std::string Err;
  EXPECT_EQ(P.parse("--inline-depth=abc", Err), 5);
  EXPECT_EQ(Err, "error: invalid value in '--inline-depth=abc' "
                 "(expected an integer in [0, 64])\n");
  Err.clear();
  EXPECT_EQ(P.parse("--definitely-not-a-flag", Err), 1);
  EXPECT_EQ(Err, "unknown option '--definitely-not-a-flag'\n");
  Err.clear();
  InvocationArgParser Dup;
  EXPECT_EQ(Dup.parse("--stats-json=-", Err), 0);
  // Repeating the same target is idempotent (matching the CLI);
  // conflicting targets are the bad-flag exit.
  EXPECT_EQ(Dup.parse("--stats-json=-", Err), 0);
  EXPECT_EQ(Dup.parse("--stats-json=x.json", Err), 5);
  EXPECT_EQ(Err, "error: conflicting --stats-json targets '-' and "
                 "'x.json'\n");
}

TEST(ServeInvocation, DaemonModeRejectsServerSideFiles) {
  // The daemon passes source in-band and owns its own cache and
  // filesystem; positionals and file-writing flags are usage errors
  // with actionable text, while the '-' in-band targets stay allowed.
  auto Reject = [](const std::string &Flag, const char *Frag) {
    InvocationArgParser P;
    P.AllowPositional = false;
    P.AllowFileOutputs = false;
    std::string Err;
    EXPECT_EQ(P.parse(Flag, Err), 1) << Flag;
    EXPECT_NE(Err.find(Frag), std::string::npos) << Flag << " -> " << Err;
  };
  Reject("prog.lna", "in-band");
  Reject("--trace-out=t.json", "--trace-out");
  Reject("--stats-json=s.json", "--stats-json");
  Reject("--metrics-out=m.json", "--metrics-out");
  Reject("--cache-dir=d", "cache");

  InvocationArgParser P;
  P.AllowPositional = false;
  P.AllowFileOutputs = false;
  std::string Err;
  EXPECT_EQ(P.parse("--stats-json=-", Err), 0) << Err;
  EXPECT_EQ(P.parse("--metrics-out=-", Err), 0) << Err;
  EXPECT_EQ(P.parse("--stats", Err), 0) << Err;
}

// Satellite audit: every output-changing flag added since the cache key
// was introduced (--alias=, --explain, the budget flags, ...) must
// shape the invocation key. Sweep the full flag surface pairwise.
TEST(ServeInvocation, FlagSweepYieldsPairwiseDistinctKeys) {
  const std::string Source = "fun f(x: int) : int { x }";
  const std::vector<std::vector<std::string>> Variants = {
      {},
      {"--check"},
      {"--all-strong"},
      {"--no-locks"},
      {"--print-annotated"},
      {"--run"},
      {"--run=7"},
      {"--inline-depth=3"},
      {"--inline-depth=4"},
      {"--no-down"},
      {"--backwards"},
      {"--alias=andersen"},
      {"--explain"},
      {"--timeout-ms=60000"},
      {"--max-memory-mb=128"},
      {"--max-steps=1000000"},
      {"--check", "--explain"},
      {"--check", "--alias=andersen"},
  };
  std::set<std::string> Keys;
  for (const auto &Flags : Variants) {
    std::string Key = invocationKey(optsFor(Flags), Source);
    EXPECT_EQ(Key.rfind("a-", 0), 0u) << Key;
    EXPECT_TRUE(Keys.insert(Key).second)
        << "duplicate key for flag set: " << testing::PrintToString(Flags);
  }
  // Deterministic: the same options and source always produce the same
  // key; different source bytes never collide with it.
  EXPECT_EQ(invocationKey(optsFor({"--check"}), Source),
            invocationKey(optsFor({"--check"}), Source));
  EXPECT_NE(invocationKey(optsFor({}), Source),
            invocationKey(optsFor({}), Source + " "));
}

TEST(ServeInvocation, ObservabilityFlagsBypassTheResultCache) {
  EXPECT_FALSE(bypassesResultCache(optsFor({})));
  EXPECT_FALSE(bypassesResultCache(optsFor({"--alias=andersen"})));
  EXPECT_TRUE(bypassesResultCache(optsFor({"--stats"})));
  EXPECT_TRUE(bypassesResultCache(optsFor({"--stats-json=-"})));
  EXPECT_TRUE(bypassesResultCache(optsFor({"--metrics-out=-"})));
  InvocationArgParser P;
  std::string Err;
  ASSERT_EQ(P.parse("--trace-out=t.json", Err), 0);
  EXPECT_TRUE(bypassesResultCache(P.Opts));
}

TEST(ServeInvocation, EntryCodecRoundTripsAndRejectsGarbage) {
  InvocationResult R;
  R.Exit = 2;
  R.Out = "stdout bytes\nwith\nnewlines";
  R.Err = "stderr\x01 bytes";
  InvocationResult Back;
  ASSERT_TRUE(decodeInvocation(encodeInvocation(R), Back));
  EXPECT_EQ(Back.Exit, R.Exit);
  EXPECT_EQ(Back.Out, R.Out);
  EXPECT_EQ(Back.Err, R.Err);

  EXPECT_FALSE(decodeInvocation("", Back));
  EXPECT_FALSE(decodeInvocation("garbage", Back));
  EXPECT_FALSE(decodeInvocation("analyze 99 0 0 0\n", Back));
  // Truncated payload: header promises more bytes than are present.
  std::string Torn = encodeInvocation(R);
  Torn.resize(Torn.size() - 4);
  EXPECT_FALSE(decodeInvocation(Torn, Back));
}

TEST(ServeInvocation, CacheableExitsAreTheDeterministicOnes) {
  for (int Exit : {0, 1, 2, 3})
    EXPECT_TRUE(invocationCacheable(Exit)) << Exit;
  for (int Exit : {4, 5, 6, 7})
    EXPECT_FALSE(invocationCacheable(Exit)) << Exit;
}

//===----------------------------------------------------------------------===//
// Per-request isolation (the cross-request obs state-leak regression)
//===----------------------------------------------------------------------===//

TEST(ServeInvocation, RepeatRunsAreByteIdenticalAndRetainTheSession) {
  std::string Source = readFile(fixturePath("demo.lna"));
  InvocationOptions Opts = optsFor({"--print-annotated", "--run"});
  std::unique_ptr<AnalysisSession> Session;
  InvocationResult A = runInvocation(Opts, Source, nullptr, &Session);
  InvocationResult B = runInvocation(Opts, Source, nullptr);
  EXPECT_EQ(A.Exit, 0);
  EXPECT_EQ(A.Exit, B.Exit);
  EXPECT_EQ(A.Out, B.Out);
  EXPECT_EQ(A.Err, B.Err);
  // The retained session is the parsed AST + solved constraints a
  // resident process keeps warm.
  ASSERT_NE(Session, nullptr);
  EXPECT_TRUE(Session->hasResult());
}

// Two sequential requests on ONE thread must behave like two fresh
// processes: request A's backend choice (and the metric names it
// registers) must not bleed into request B's metrics output. This is
// the daemon's core isolation contract, checked here without a socket
// in the way.
TEST(ServeInvocation, SequentialRequestsOnOneThreadMatchFreshProcesses) {
  std::string Source = readFile(fixturePath("demo.lna"));
  InvocationOptions Plain = optsFor({"--metrics-out=-", "--no-locks"});
  InvocationOptions Andersen =
      optsFor({"--metrics-out=-", "--no-locks", "--alias=andersen"});

  InvocationResult Fresh = runInvocation(Plain, Source, nullptr);
  InvocationResult WithAndersen = runInvocation(Andersen, Source, nullptr);
  InvocationResult After = runInvocation(Plain, Source, nullptr);

  EXPECT_NE(WithAndersen.Out.find("alias.andersen."), std::string::npos);
  // The second plain run is byte-identical to the first: no Andersen
  // metric names, no carried-over counts.
  EXPECT_EQ(Fresh.Out, After.Out);
  EXPECT_EQ(Fresh.Err, After.Err);
  EXPECT_EQ(After.Out.find("alias.andersen."), std::string::npos);
}

// The pooled-thread hazard the server scrubs against: an ambient
// thread-local registry/sink leaked by earlier work on the same thread
// would silently absorb the next request's samples. With the boundary
// exchange in place the leaked registry stays empty.
TEST(ServeInvocation, BoundaryScrubShieldsAmbientObsSlots) {
  std::string Source = readFile(fixturePath("demo.lna"));
  InvocationOptions Opts = optsFor({"--no-locks"});

  // First, demonstrate the hazard is real: without scrubbing, a leaked
  // registry absorbs samples from a request that asked for no metrics.
  MetricsRegistry LeakedUnscrubbed;
  {
    MetricsScope Scope(LeakedUnscrubbed);
    (void)runInvocation(Opts, Source, nullptr);
  }
  EXPECT_FALSE(LeakedUnscrubbed.empty())
      << "expected the analysis to emit metrics into an ambient registry; "
         "if this stops holding, the scrub test below loses its teeth";

  // Now the server's request boundary: scrub, run, restore.
  MetricsRegistry Leaked;
  TraceSink LeakedSink(64);
  MetricsScope MScope(Leaked);
  TraceScope TScope(LeakedSink);
  MetricsRegistry *PrevM = exchangeThreadMetrics(nullptr);
  TraceSink *PrevT = exchangeThreadTraceSink(nullptr);
  (void)runInvocation(Opts, Source, nullptr);
  exchangeThreadMetrics(PrevM);
  exchangeThreadTraceSink(PrevT);

  EXPECT_TRUE(Leaked.empty());
  EXPECT_EQ(LeakedSink.numTotal(), 0u);
  // The exchange restored the slots: ambient recording works again.
  obsCounter("serve-test-restored", 1);
  EXPECT_EQ(Leaked.counter("serve-test-restored"), 1u);
}

//===----------------------------------------------------------------------===//
// The daemon end to end
//===----------------------------------------------------------------------===//

/// One running lna-serve with a client connection and one-shot
/// lna-analyze as the byte-identity oracle.
class ServeDaemon {
public:
  explicit ServeDaemon(std::vector<std::string> ExtraArgs = {},
                       const std::string &Dir = "") {
    WorkDir = Dir.empty() ? tempDir("lna_serve_e2e") : Dir;
    SocketPath = WorkDir + "/serve.sock";
    std::vector<std::string> Argv = {LNA_SERVE_BIN, "--socket=" + SocketPath,
                                     "--threads=2"};
    for (auto &A : ExtraArgs)
      Argv.push_back(A);
    std::string Error;
    Started = Child.spawn(Argv, Error);
    EXPECT_TRUE(Started) << Error;
    // The socket file appears when the listener is bound.
    for (int I = 0; I < 1000 && Fd < 0; ++I) {
      std::string ConnErr;
      Fd = connectUnix(SocketPath, ConnErr);
      if (Fd < 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(Fd, 0) << "daemon never came up";
  }

  ~ServeDaemon() {
    if (Fd >= 0)
      ::close(Fd);
    if (Started && Child.poll().running()) {
      Child.kill(SIGKILL);
      Child.wait();
    }
  }

  int fd() const { return Fd; }
  const std::string &dir() const { return WorkDir; }
  const std::string &socketPath() const { return SocketPath; }

  /// Sends one raw line and reads one reply line.
  std::string raw(const std::string &Line) {
    EXPECT_TRUE(writeAll(Fd, Line + "\n"));
    std::string Reply;
    EXPECT_TRUE(readLineBlocking(Fd, Carry, Reply));
    return Reply;
  }

  /// Sends one request object and parses the reply.
  JsonValue rpc(const std::string &Json) {
    auto V = JsonValue::parse(raw(Json));
    EXPECT_TRUE(V.has_value());
    return V.value_or(JsonValue{});
  }

  static std::string encodeRequest(const std::string &Id,
                                   const std::string &Cmd,
                                   const std::string &Source,
                                   const std::vector<std::string> &Flags) {
    std::string R = "{\"id\":\"" + jsonEscape(Id) + "\",\"cmd\":\"" + Cmd +
                    "\",\"source\":\"" + jsonEscape(Source) + "\",\"flags\":[";
    for (size_t I = 0; I < Flags.size(); ++I) {
      if (I)
        R += ",";
      R += "\"" + jsonEscape(Flags[I]) + "\"";
    }
    R += "]}";
    return R;
  }

  /// Clean shutdown; returns the daemon's exit status.
  int shutdown() {
    (void)rpc("{\"cmd\":\"shutdown\"}");
    ExitStatus St = Child.wait();
    EXPECT_EQ(St.K, ExitStatus::Kind::Exited) << St.describe();
    return St.Code;
  }

private:
  std::string WorkDir, SocketPath, Carry;
  Subprocess Child;
  bool Started = false;
  int Fd = -1;
};

/// Runs one-shot `lna-analyze <flags> <file>` capturing both streams.
InvocationResult runOneShot(const std::vector<std::string> &Flags,
                            const std::string &SourceFile,
                            const std::string &WorkDir) {
  std::string OutFile = WorkDir + "/oneshot.out";
  std::string ErrFile = WorkDir + "/oneshot.err";
  std::string Cmd = "exec \"$0\"";
  std::vector<std::string> Argv = {"sh", "-c", "", LNA_ANALYZE_BIN};
  for (size_t I = 0; I < Flags.size(); ++I) {
    Cmd += " \"$" + std::to_string(I + 1) + "\"";
    Argv.push_back(Flags[I]);
  }
  Cmd += " \"$" + std::to_string(Flags.size() + 1) + "\"";
  Argv.push_back(SourceFile);
  Cmd += " > " + OutFile + " 2> " + ErrFile;
  Argv[2] = Cmd;
  Subprocess P;
  std::string Error;
  EXPECT_TRUE(P.spawn(Argv, Error)) << Error;
  ExitStatus St = P.wait();
  EXPECT_EQ(St.K, ExitStatus::Kind::Exited) << St.describe();
  InvocationResult R;
  R.Exit = St.Code;
  R.Out = readFile(OutFile);
  R.Err = readFile(ErrFile);
  return R;
}

void expectReplyMatchesOneShot(ServeDaemon &D, const std::string &Fixture,
                               const std::vector<std::string> &Flags) {
  std::string Source = readFile(fixturePath(Fixture));
  JsonValue Reply = D.rpc(
      ServeDaemon::encodeRequest("id-" + Fixture, "analyze", Source, Flags));
  InvocationResult OneShot = runOneShot(Flags, fixturePath(Fixture), D.dir());

  ASSERT_NE(Reply.field("ok"), nullptr);
  EXPECT_EQ(Reply.field("ok")->asBool(), true);
  EXPECT_EQ(*Reply.field("id")->asString(), "id-" + Fixture);
  EXPECT_EQ(Reply.field("exit")->asNumber(), OneShot.Exit);
  EXPECT_EQ(*Reply.field("out")->asString(), OneShot.Out)
      << Fixture << " stdout diverged from one-shot lna-analyze";
  EXPECT_EQ(*Reply.field("err")->asString(), OneShot.Err)
      << Fixture << " stderr diverged from one-shot lna-analyze";
}

TEST(ServeDaemon, RepliesByteIdenticalToOneShotAnalyze) {
  ServeDaemon D;
  // Every reachable analysis surface: inference, checking, violations,
  // lock errors, annotated printing, evaluation, explain, in-band
  // stats/metrics JSON, non-default alias backend.
  expectReplyMatchesOneShot(D, "demo.lna", {"--print-annotated", "--run"});
  expectReplyMatchesOneShot(D, "demo.lna", {"--check"});
  expectReplyMatchesOneShot(D, "demo.lna", {"--check", "--all-strong"});
  expectReplyMatchesOneShot(D, "violation.lna", {"--check", "--no-locks"});
  expectReplyMatchesOneShot(D, "explain_restrict.lna",
                            {"--check", "--no-locks", "--explain"});
  expectReplyMatchesOneShot(D, "explain_confine.lna", {"--check", "--explain"});
  // (--stats-json=-/--metrics-out=- are exercised in the bypass tests;
  // their output embeds wall-clock timings, so two processes can never
  // be byte-compared on them.)
  expectReplyMatchesOneShot(D, "demo.lna",
                            {"--alias=andersen", "--no-locks"});
  expectReplyMatchesOneShot(D, "demo.lna", {"--infer", "--inline-depth=2"});
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, FlagErrorsMatchOneShotTextAndStatus) {
  ServeDaemon D;
  std::string Source = readFile(fixturePath("demo.lna"));
  JsonValue Reply = D.rpc(ServeDaemon::encodeRequest(
      "bad", "analyze", Source, {"--inline-depth=abc"}));
  EXPECT_EQ(Reply.field("ok")->asBool(), false);
  EXPECT_EQ(Reply.field("exit")->asNumber(), 5.0);
  EXPECT_NE(Reply.field("error")->asString()->find(
                "error: invalid value in '--inline-depth=abc'"),
            std::string::npos);
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, UnchangedModuleIsServedFromTheHotTier) {
  ServeDaemon D;
  std::string Source = readFile(fixturePath("demo.lna"));
  std::vector<std::string> Flags = {"--print-annotated", "--run"};
  JsonValue First =
      D.rpc(ServeDaemon::encodeRequest("a", "analyze", Source, Flags));
  JsonValue Second =
      D.rpc(ServeDaemon::encodeRequest("b", "analyze", Source, Flags));
  EXPECT_EQ(*First.field("cache")->asString(), "miss");
  EXPECT_EQ(*Second.field("cache")->asString(), "hot");
  EXPECT_EQ(*First.field("out")->asString(), *Second.field("out")->asString());

  JsonValue Stats = D.rpc("{\"cmd\":\"stats\"}");
  const JsonValue *S = Stats.field("stats");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->field("hot_hits")->asNumber(), 1.0);
  EXPECT_EQ(S->field("miss_runs")->asNumber(), 1.0);
  // The live session (AST + solved constraints) is retained in memory.
  EXPECT_GE(*S->field("hot_sessions")->asNumber(), 1.0);
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, EditedModuleInvalidatesOnlyItself) {
  ServeDaemon D;
  std::string A = readFile(fixturePath("demo.lna"));
  std::string B = readFile(fixturePath("violation.lna"));
  std::vector<std::string> Flags = {"--check", "--no-locks"};
  auto Tier = [&](const std::string &Id, const std::string &Src) {
    JsonValue R = D.rpc(ServeDaemon::encodeRequest(Id, "analyze", Src, Flags));
    const JsonValue *C = R.field("cache");
    return C && C->asString() ? *C->asString() : std::string("?");
  };
  EXPECT_EQ(Tier("a1", A), "miss");
  EXPECT_EQ(Tier("b1", B), "miss");
  EXPECT_EQ(Tier("a2", A), "hot");
  // An edit is just different content: new key, fresh analysis --
  // and the *other* module stays hot.
  EXPECT_EQ(Tier("a3", A + "\n"), "miss");
  EXPECT_EQ(Tier("b2", B), "hot");
  EXPECT_EQ(Tier("a4", A), "hot");
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, ColdTierSurvivesRestart) {
  std::string Dir = tempDir("lna_serve_restart");
  std::string Source = readFile(fixturePath("demo.lna"));
  std::vector<std::string> Flags = {"--print-annotated"};
  std::string FirstOut;
  {
    ServeDaemon D({"--cache-dir=" + Dir + "/cache"}, Dir);
    JsonValue R =
        D.rpc(ServeDaemon::encodeRequest("r1", "analyze", Source, Flags));
    EXPECT_EQ(*R.field("cache")->asString(), "miss");
    FirstOut = *R.field("out")->asString();
    EXPECT_EQ(D.shutdown(), 0);
  }
  {
    // A new process, same cache dir: the answer comes from the shared
    // on-disk tier without re-analysis, byte-identical.
    ServeDaemon D({"--cache-dir=" + Dir + "/cache"}, Dir);
    JsonValue R =
        D.rpc(ServeDaemon::encodeRequest("r2", "analyze", Source, Flags));
    EXPECT_EQ(*R.field("cache")->asString(), "cold");
    EXPECT_EQ(*R.field("out")->asString(), FirstOut);
    EXPECT_EQ(D.shutdown(), 0);
  }
}

TEST(ServeDaemon, ObservabilityRequestsBypassBothTiers) {
  ServeDaemon D;
  std::string Source = readFile(fixturePath("demo.lna"));
  std::vector<std::string> Flags = {"--metrics-out=-", "--no-locks"};
  JsonValue R1 =
      D.rpc(ServeDaemon::encodeRequest("m1", "analyze", Source, Flags));
  JsonValue R2 =
      D.rpc(ServeDaemon::encodeRequest("m2", "analyze", Source, Flags));
  EXPECT_EQ(*R1.field("cache")->asString(), "bypass");
  EXPECT_EQ(*R2.field("cache")->asString(), "bypass");
  EXPECT_NE(R1.field("out")->asString()->find("\"counters\""),
            std::string::npos);
  EXPECT_EQ(D.shutdown(), 0);
}

// End-to-end variant of the state-leak regression: an Andersen request
// between two plain metrics requests, all multiplexed onto the same
// worker pool, must leave the plain replies byte-identical.
TEST(ServeDaemon, CrossRequestObsIsolationOverTheWire) {
  ServeDaemon D;
  std::string Source = readFile(fixturePath("demo.lna"));
  std::vector<std::string> Plain = {"--metrics-out=-", "--no-locks"};
  std::vector<std::string> Andersen = {"--metrics-out=-", "--no-locks",
                                       "--alias=andersen"};
  JsonValue Before =
      D.rpc(ServeDaemon::encodeRequest("p1", "analyze", Source, Plain));
  JsonValue Mid =
      D.rpc(ServeDaemon::encodeRequest("a1", "analyze", Source, Andersen));
  JsonValue After =
      D.rpc(ServeDaemon::encodeRequest("p2", "analyze", Source, Plain));
  EXPECT_NE(Mid.field("out")->asString()->find("alias.andersen."),
            std::string::npos);
  EXPECT_EQ(*Before.field("out")->asString(), *After.field("out")->asString());
  EXPECT_EQ(After.field("out")->asString()->find("alias.andersen."),
            std::string::npos);
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, ProtocolErrorsAreRepliesNotDisconnects) {
  ServeDaemon D;
  auto ExpectError = [&](const std::string &Line, const char *Frag) {
    auto V = JsonValue::parse(D.raw(Line));
    ASSERT_TRUE(V.has_value()) << Line;
    EXPECT_EQ(V->field("ok")->asBool(), false) << Line;
    EXPECT_NE(V->field("error")->asString()->find(Frag), std::string::npos)
        << Line << " -> " << *V->field("error")->asString();
  };
  ExpectError("this is not json", "malformed");
  ExpectError("{\"cmd\":\"analyze\"}", "missing 'source'");
  ExpectError("{\"cmd\":\"frobnicate\"}", "unknown cmd");
  ExpectError("{\"cmd\":\"analyze\",\"source\":\"x\",\"flags\":\"-c\"}",
              "array");
  // The connection survived all of it.
  std::string Source = readFile(fixturePath("demo.lna"));
  JsonValue Ok = D.rpc(ServeDaemon::encodeRequest("ok", "analyze", Source,
                                                  {"--print-annotated"}));
  EXPECT_EQ(Ok.field("ok")->asBool(), true);

  JsonValue Stats = D.rpc("{\"cmd\":\"stats\"}");
  EXPECT_GE(*Stats.field("stats")->field("protocol_errors")->asNumber(), 4.0);
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, InferAndExplainCmdsAliasTheFlags) {
  ServeDaemon D;
  std::string Source = readFile(fixturePath("explain_restrict.lna"));
  std::vector<std::string> Flags = {"--check", "--no-locks"};
  JsonValue ViaCmd = D.rpc(
      ServeDaemon::encodeRequest("c", "explain", Source, Flags));
  JsonValue ViaFlag = D.rpc(ServeDaemon::encodeRequest(
      "f", "analyze", Source, {"--check", "--no-locks", "--explain"}));
  EXPECT_EQ(*ViaCmd.field("out")->asString(), *ViaFlag.field("out")->asString());
  EXPECT_EQ(ViaCmd.field("exit")->asNumber(), ViaFlag.field("exit")->asNumber());
  // And the aliased request hits the same cache slot.
  EXPECT_EQ(*ViaFlag.field("cache")->asString(), "hot");
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, EightConcurrentClientsGetConsistentAnswers) {
  ServeDaemon D({"--threads=4"});
  std::string DemoSrc = readFile(fixturePath("demo.lna"));
  std::string ViolSrc = readFile(fixturePath("violation.lna"));

  // Expected bytes, established once through the daemon itself.
  JsonValue DemoRef = D.rpc(ServeDaemon::encodeRequest(
      "ref-d", "analyze", DemoSrc, {"--print-annotated"}));
  JsonValue ViolRef = D.rpc(ServeDaemon::encodeRequest(
      "ref-v", "analyze", ViolSrc, {"--check", "--no-locks"}));
  std::string DemoOut = *DemoRef.field("out")->asString();
  std::string ViolOut = *ViolRef.field("out")->asString();

  constexpr int NumClients = 8;
  constexpr int PerClient = 6;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Clients;
  for (int C = 0; C < NumClients; ++C) {
    Clients.emplace_back([&, C] {
      std::string ConnErr, Carry;
      int Fd = connectUnix(D.socketPath(), ConnErr);
      if (Fd < 0) {
        ++Failures;
        return;
      }
      for (int I = 0; I < PerClient; ++I) {
        bool Demo = (C + I) % 2 == 0;
        std::string Id =
            "c" + std::to_string(C) + "-" + std::to_string(I);
        std::string Req = ServeDaemon::encodeRequest(
            Id, "analyze", Demo ? DemoSrc : ViolSrc,
            Demo ? std::vector<std::string>{"--print-annotated"}
                 : std::vector<std::string>{"--check", "--no-locks"});
        std::string ReplyLine;
        if (!writeAll(Fd, Req + "\n") ||
            !readLineBlocking(Fd, Carry, ReplyLine)) {
          ++Failures;
          break;
        }
        auto Reply = JsonValue::parse(ReplyLine);
        if (!Reply || !Reply->field("id") ||
            *Reply->field("id")->asString() != Id ||
            Reply->field("ok")->asBool() != true ||
            *Reply->field("out")->asString() != (Demo ? DemoOut : ViolOut)) {
          ++Failures;
          break;
        }
      }
      ::close(Fd);
    });
  }
  for (auto &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  JsonValue Stats = D.rpc("{\"cmd\":\"stats\"}");
  EXPECT_GE(*Stats.field("stats")->field("requests")->asNumber(),
            2.0 + NumClients * PerClient);
  EXPECT_EQ(D.shutdown(), 0);
}

TEST(ServeDaemon, EventsJournalRecordsTheLifecycle) {
  std::string Dir = tempDir("lna_serve_journal");
  {
    ServeDaemon D({"--events-out=" + Dir + "/events.jsonl"}, Dir);
    std::string Source = readFile(fixturePath("demo.lna"));
    (void)D.rpc(ServeDaemon::encodeRequest("j1", "analyze", Source,
                                           {"--print-annotated"}));
    EXPECT_EQ(D.shutdown(), 0);
  }
  std::string Journal = readFile(Dir + "/events.jsonl");
  EXPECT_NE(Journal.find("\"serve-start\""), std::string::npos);
  EXPECT_NE(Journal.find("\"conn-open\""), std::string::npos);
  EXPECT_NE(Journal.find("\"request\""), std::string::npos);
  EXPECT_NE(Journal.find("\"serve-stop\""), std::string::npos);
}

} // namespace
