//===- EffectsTest.cpp - Constraint system unit tests ---------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "effects/EffectTerm.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct EffectsFixture : ::testing::Test {
  LocTable Locs;
  ConstraintSystem CS{Locs};

  LocId L(int) { return Locs.fresh(); }
};

//===----------------------------------------------------------------------===//
// Propagation basics
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, ElementSeedsAppearInSolution) {
  EffVar V = CS.makeVar();
  LocId A = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Read, A, V));
  EXPECT_FALSE(CS.member(EffectKind::Write, A, V));
}

TEST_F(EffectsFixture, EdgesPropagate) {
  EffVar V1 = CS.makeVar();
  EffVar V2 = CS.makeVar();
  EffVar V3 = CS.makeVar();
  LocId A = Locs.fresh();
  CS.addElement(EffectKind::Write, A, V1);
  CS.addEdge(V1, V2);
  CS.addEdge(V2, V3);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Write, A, V3));
}

TEST_F(EffectsFixture, CyclesConverge) {
  EffVar V1 = CS.makeVar();
  EffVar V2 = CS.makeVar();
  LocId A = Locs.fresh();
  CS.addElement(EffectKind::Alloc, A, V1);
  CS.addEdge(V1, V2);
  CS.addEdge(V2, V1);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Alloc, A, V1));
  EXPECT_TRUE(CS.member(EffectKind::Alloc, A, V2));
  EXPECT_EQ(CS.solution(V1).size(), 1u);
}

TEST_F(EffectsFixture, LeastSolutionIsMinimal) {
  // Nothing flows into V; its solution must be empty.
  EffVar V = CS.makeVar();
  EffVar Other = CS.makeVar();
  CS.addElement(EffectKind::Read, Locs.fresh(), Other);
  CS.solve();
  EXPECT_TRUE(CS.solution(V).empty());
}

//===----------------------------------------------------------------------===//
// Intersections (the I nodes of Figure 5)
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, IntersectionKeepsOnlyCommonElements) {
  EffVar A = CS.makeVar(), B = CS.makeVar(), Out = CS.makeVar();
  LocId X = Locs.fresh(), Y = Locs.fresh(), Z = Locs.fresh();
  CS.addElement(EffectKind::Read, X, A);
  CS.addElement(EffectKind::Read, Y, A);
  CS.addElement(EffectKind::Read, Y, B);
  CS.addElement(EffectKind::Read, Z, B);
  CS.addIntersection(InterOperand::var(A), InterOperand::var(B), Out);
  CS.solve();
  EXPECT_FALSE(CS.member(EffectKind::Read, X, Out));
  EXPECT_TRUE(CS.member(EffectKind::Read, Y, Out));
  EXPECT_FALSE(CS.member(EffectKind::Read, Z, Out));
}

TEST_F(EffectsFixture, IntersectionDistinguishesKinds) {
  EffVar A = CS.makeVar(), B = CS.makeVar(), Out = CS.makeVar();
  LocId X = Locs.fresh();
  CS.addElement(EffectKind::Read, X, A);
  CS.addElement(EffectKind::Write, X, B);
  CS.addIntersection(InterOperand::var(A), InterOperand::var(B), Out);
  CS.solve();
  EXPECT_TRUE(CS.solution(Out).empty());
}

TEST_F(EffectsFixture, IntersectionWithElemOperand) {
  EffVar A = CS.makeVar(), Out = CS.makeVar();
  LocId X = Locs.fresh(), Y = Locs.fresh();
  CS.addElement(EffectKind::Write, X, A);
  CS.addElement(EffectKind::Write, Y, A);
  CS.addIntersection(InterOperand::var(A),
                     InterOperand::elem(EffectElem(EffectKind::Write, X)),
                     Out);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Write, X, Out));
  EXPECT_FALSE(CS.member(EffectKind::Write, Y, Out));
}

TEST_F(EffectsFixture, ConstantIntersectionOfEqualElems) {
  EffVar Out = CS.makeVar();
  LocId X = Locs.fresh();
  CS.addIntersection(InterOperand::elem(EffectElem(EffectKind::Read, X)),
                     InterOperand::elem(EffectElem(EffectKind::Read, X)),
                     Out);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Read, X, Out));
}

TEST_F(EffectsFixture, UnificationMakesIntersectionFire) {
  // read(X) n read(Y) is empty until X and Y unify.
  EffVar A = CS.makeVar(), B = CS.makeVar(), Out = CS.makeVar(),
         Trigger = CS.makeVar();
  LocId X = Locs.fresh(), Y = Locs.fresh(), T = Locs.fresh();
  CS.addElement(EffectKind::Read, X, A);
  CS.addElement(EffectKind::Read, Y, B);
  CS.addIntersection(InterOperand::var(A), InterOperand::var(B), Out);
  // Conditional: when T is read in Trigger, unify X = Y.
  CS.addElement(EffectKind::Read, T, Trigger);
  CondConstraint C;
  C.P = CondConstraint::Premise::LocInVar;
  C.Rho = T;
  C.Var = Trigger;
  C.Actions.push_back({CondAction::Kind::UnifyLocs, X, Y});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(Locs.sameClass(X, Y));
  EXPECT_TRUE(CS.member(EffectKind::Read, X, Out));
}

//===----------------------------------------------------------------------===//
// CHECK-SAT (Figure 5) vs. full propagation
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, ReachesAgreesWithPropagationOnChains) {
  EffVar V1 = CS.makeVar(), V2 = CS.makeVar(), V3 = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V1);
  CS.addElement(EffectKind::Write, B, V2);
  CS.addEdge(V1, V2);
  EXPECT_TRUE(CS.reaches(EffectKind::Read, A, V2));
  EXPECT_FALSE(CS.reaches(EffectKind::Read, A, V3));
  EXPECT_FALSE(CS.reaches(EffectKind::Write, B, V1));
  EXPECT_TRUE(CS.reachesAnyKind(B, V2));
}

TEST_F(EffectsFixture, ReachesThroughIntersectionNeedsBothSides) {
  EffVar A = CS.makeVar(), B = CS.makeVar(), Out = CS.makeVar();
  LocId X = Locs.fresh();
  CS.addElement(EffectKind::Read, X, A);
  CS.addIntersection(InterOperand::var(A), InterOperand::var(B), Out);
  // Only one input has the element: it must not reach Out.
  EXPECT_FALSE(CS.reaches(EffectKind::Read, X, Out));
  CS.addElement(EffectKind::Read, X, B);
  EXPECT_TRUE(CS.reaches(EffectKind::Read, X, Out));
}

TEST_F(EffectsFixture, ReachesHandlesDiamonds) {
  //      V1
  //     /  \.
  //   V2    V3   both feed an intersection
  EffVar V1 = CS.makeVar(), V2 = CS.makeVar(), V3 = CS.makeVar(),
         Out = CS.makeVar();
  LocId X = Locs.fresh();
  CS.addElement(EffectKind::Alloc, X, V1);
  CS.addEdge(V1, V2);
  CS.addEdge(V1, V3);
  CS.addIntersection(InterOperand::var(V2), InterOperand::var(V3), Out);
  EXPECT_TRUE(CS.reaches(EffectKind::Alloc, X, Out));
}

TEST_F(EffectsFixture, CheckSatRandomGraphsAgreeWithPropagation) {
  // Property check: on random DAG-ish graphs with intersections, the
  // per-source CHECK-SAT answer equals least-solution membership.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    LocTable Locs2;
    ConstraintSystem CS2(Locs2);
    // Deterministic pseudo-random structure from the seed.
    uint64_t S = Seed * 0x9e3779b97f4a7c15ULL;
    auto Next = [&S]() {
      S ^= S << 13;
      S ^= S >> 7;
      S ^= S << 17;
      return S;
    };
    const int NumVars = 20;
    const int NumLocs = 6;
    std::vector<EffVar> Vars;
    std::vector<LocId> Ls;
    for (int I = 0; I < NumVars; ++I)
      Vars.push_back(CS2.makeVar());
    for (int I = 0; I < NumLocs; ++I)
      Ls.push_back(Locs2.fresh());
    for (int I = 0; I < 12; ++I)
      CS2.addElement(static_cast<EffectKind>(Next() % 3),
                     Ls[Next() % NumLocs], Vars[Next() % NumVars]);
    for (int I = 0; I < 25; ++I)
      CS2.addEdge(Vars[Next() % NumVars], Vars[Next() % NumVars]);
    for (int I = 0; I < 6; ++I)
      CS2.addIntersection(InterOperand::var(Vars[Next() % NumVars]),
                          InterOperand::var(Vars[Next() % NumVars]),
                          Vars[Next() % NumVars]);
    // Ask CHECK-SAT first (pure), then solve and compare membership.
    std::vector<std::vector<std::vector<bool>>> Reaches(
        3, std::vector<std::vector<bool>>(NumLocs,
                                          std::vector<bool>(NumVars)));
    for (int K = 0; K < 3; ++K)
      for (int L = 0; L < NumLocs; ++L)
        for (int V = 0; V < NumVars; ++V)
          Reaches[K][L][V] =
              CS2.reaches(static_cast<EffectKind>(K), Ls[L], Vars[V]);
    CS2.solve();
    for (int K = 0; K < 3; ++K)
      for (int L = 0; L < NumLocs; ++L)
        for (int V = 0; V < NumVars; ++V)
          EXPECT_EQ(Reaches[K][L][V],
                    CS2.member(static_cast<EffectKind>(K), Ls[L], Vars[V]))
              << "seed " << Seed << " kind " << K << " loc " << L << " var "
              << V;
  }
}

//===----------------------------------------------------------------------===//
// Conditional constraints
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, ConditionalFiresWhenPremiseHolds) {
  EffVar V = CS.makeVar(), Out = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh();
  CS.addElement(EffectKind::Write, A, V);
  CondConstraint C;
  C.P = CondConstraint::Premise::LocInVar;
  C.Rho = A;
  C.Var = V;
  C.Actions.push_back({CondAction::Kind::AddElemAllKinds, B, Out});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(CS.memberAnyKind(B, Out));
}

TEST_F(EffectsFixture, ConditionalDoesNotFireOtherwise) {
  EffVar V = CS.makeVar(), Out = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh();
  CondConstraint C;
  C.P = CondConstraint::Premise::LocInVar;
  C.Rho = A;
  C.Var = V;
  C.Actions.push_back({CondAction::Kind::AddElemAllKinds, B, Out});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(CS.solution(Out).empty());
  EXPECT_EQ(CS.stats().CondFirings, 0u);
}

TEST_F(EffectsFixture, ConditionalChainsFireTransitively) {
  // C1's action satisfies C2's premise.
  EffVar V1 = CS.makeVar(), V2 = CS.makeVar(), Out = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh(), Z = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V1);
  CondConstraint C1;
  C1.P = CondConstraint::Premise::LocInVar;
  C1.Rho = A;
  C1.Var = V1;
  C1.Actions.push_back({CondAction::Kind::AddElemAllKinds, B, V2});
  CS.addConditional(std::move(C1));
  CondConstraint C2;
  C2.P = CondConstraint::Premise::LocInVar;
  C2.Rho = B;
  C2.Var = V2;
  C2.Actions.push_back({CondAction::Kind::AddElemReadWrite, Z, Out});
  CS.addConditional(std::move(C2));
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Read, Z, Out));
  EXPECT_TRUE(CS.member(EffectKind::Write, Z, Out));
  EXPECT_FALSE(CS.member(EffectKind::Alloc, Z, Out));
  EXPECT_EQ(CS.stats().CondFirings, 2u);
}

TEST_F(EffectsFixture, SideEffectPremiseIgnoresReads) {
  EffVar V = CS.makeVar(), Out = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V);
  CondConstraint C;
  C.P = CondConstraint::Premise::SideEffectNonEmpty;
  C.Var = V;
  C.Actions.push_back({CondAction::Kind::AddElemAllKinds, B, Out});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(CS.solution(Out).empty());
}

TEST_F(EffectsFixture, SideEffectPremiseFiresOnWriteOrAlloc) {
  for (EffectKind K : {EffectKind::Write, EffectKind::Alloc}) {
    LocTable Locs2;
    ConstraintSystem CS2(Locs2);
    EffVar V = CS2.makeVar(), Out = CS2.makeVar();
    LocId A = Locs2.fresh(), B = Locs2.fresh();
    CS2.addElement(K, A, V);
    CondConstraint C;
    C.P = CondConstraint::Premise::SideEffectNonEmpty;
    C.Var = V;
    C.Actions.push_back({CondAction::Kind::AddElemAllKinds, B, Out});
    CS2.addConditional(std::move(C));
    CS2.solve();
    EXPECT_TRUE(CS2.memberAnyKind(B, Out));
  }
}

TEST_F(EffectsFixture, ReadWriteOverlapPremise) {
  EffVar Reads = CS.makeVar(), Writes = CS.makeVar(), Out = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh(), Z = Locs.fresh();
  CS.addElement(EffectKind::Read, A, Reads);
  CS.addElement(EffectKind::Write, B, Writes); // disjoint: no overlap
  CondConstraint C;
  C.P = CondConstraint::Premise::ReadWriteOverlap;
  C.VarA = Reads;
  C.Var = Writes;
  C.Actions.push_back({CondAction::Kind::AddElemAllKinds, Z, Out});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(CS.solution(Out).empty());
}

TEST_F(EffectsFixture, ReadWriteOverlapFiresAfterUnification) {
  // Reads {read(A)}, writes {write(B)}: overlap only if A = B, which a
  // first conditional establishes.
  EffVar Reads = CS.makeVar(), Writes = CS.makeVar(), Out = CS.makeVar(),
         Trig = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh(), T = Locs.fresh(),
        Z = Locs.fresh();
  CS.addElement(EffectKind::Read, A, Reads);
  CS.addElement(EffectKind::Write, B, Writes);
  CS.addElement(EffectKind::Read, T, Trig);
  CondConstraint C1;
  C1.P = CondConstraint::Premise::LocInVar;
  C1.Rho = T;
  C1.Var = Trig;
  C1.Actions.push_back({CondAction::Kind::UnifyLocs, A, B});
  CS.addConditional(std::move(C1));
  CondConstraint C2;
  C2.P = CondConstraint::Premise::ReadWriteOverlap;
  C2.VarA = Reads;
  C2.Var = Writes;
  C2.Actions.push_back({CondAction::Kind::AddElemAllKinds, Z, Out});
  CS.addConditional(std::move(C2));
  CS.solve();
  EXPECT_TRUE(CS.memberAnyKind(Z, Out));
}

TEST_F(EffectsFixture, AddEdgeActionFlowsExistingSolution) {
  EffVar Src = CS.makeVar(), Dst = CS.makeVar(), Trig = CS.makeVar();
  LocId A = Locs.fresh(), T = Locs.fresh();
  CS.addElement(EffectKind::Alloc, A, Src);
  CS.addElement(EffectKind::Read, T, Trig);
  CondConstraint C;
  C.P = CondConstraint::Premise::LocInVar;
  C.Rho = T;
  C.Var = Trig;
  C.Actions.push_back({CondAction::Kind::AddEdge, Src, Dst});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Alloc, A, Dst));
}

//===----------------------------------------------------------------------===//
// Backwards search (Section 6.2)
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, FilteredSolveCoversQueriedVariables) {
  EffVar V1 = CS.makeVar(), V2 = CS.makeVar(), Unrelated = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V1);
  CS.addEdge(V1, V2);
  CS.addElement(EffectKind::Write, B, Unrelated);
  CS.solve({V2});
  EXPECT_TRUE(CS.member(EffectKind::Read, A, V2));
}

TEST_F(EffectsFixture, FilteredSolveGivesSameAnswersAsFull) {
  // Build the same system twice; compare queried variables' solutions.
  auto Build = [](ConstraintSystem &S, LocTable &L, std::vector<EffVar> &Vs,
                  std::vector<LocId> &Ls) {
    for (int I = 0; I < 10; ++I)
      Vs.push_back(S.makeVar());
    for (int I = 0; I < 4; ++I)
      Ls.push_back(L.fresh());
    S.addElement(EffectKind::Read, Ls[0], Vs[0]);
    S.addElement(EffectKind::Write, Ls[1], Vs[1]);
    S.addElement(EffectKind::Alloc, Ls[2], Vs[5]);
    S.addEdge(Vs[0], Vs[2]);
    S.addEdge(Vs[1], Vs[2]);
    S.addEdge(Vs[2], Vs[3]);
    S.addEdge(Vs[5], Vs[6]);
    S.addIntersection(InterOperand::var(Vs[2]), InterOperand::var(Vs[1]),
                      Vs[4]);
  };
  LocTable LF, LB;
  ConstraintSystem Full(LF), Filtered(LB);
  std::vector<EffVar> VF, VB;
  std::vector<LocId> LsF, LsB;
  Build(Full, LF, VF, LsF);
  Build(Filtered, LB, VB, LsB);
  Full.solve();
  Filtered.solve({VB[3], VB[4]});
  EXPECT_EQ(Full.solution(VF[3]), Filtered.solution(VB[3]));
  EXPECT_EQ(Full.solution(VF[4]), Filtered.solution(VB[4]));
}

//===----------------------------------------------------------------------===//
// Term normalization (Figure 4b)
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, NormalizeUnionSplits) {
  TermPool Pool;
  EffVar Target = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh();
  TermId T = Pool.unite(Pool.elem(EffectKind::Read, A),
                        Pool.elem(EffectKind::Write, B));
  normalizeInclusion(Pool, T, Target, CS);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Read, A, Target));
  EXPECT_TRUE(CS.member(EffectKind::Write, B, Target));
}

TEST_F(EffectsFixture, NormalizeEmptyDropsConstraint) {
  TermPool Pool;
  EffVar Target = CS.makeVar();
  normalizeInclusion(Pool, Pool.empty(), Target, CS);
  CS.solve();
  EXPECT_TRUE(CS.solution(Target).empty());
}

TEST_F(EffectsFixture, NormalizeIntersectionOfUnions) {
  // ({read A} u {read B}) n ({read B} u {read C}) <= Target: only read B.
  TermPool Pool;
  EffVar Target = CS.makeVar();
  LocId A = Locs.fresh(), B = Locs.fresh(), C = Locs.fresh();
  TermId Left = Pool.unite(Pool.elem(EffectKind::Read, A),
                           Pool.elem(EffectKind::Read, B));
  TermId Right = Pool.unite(Pool.elem(EffectKind::Read, B),
                            Pool.elem(EffectKind::Read, C));
  normalizeInclusion(Pool, Pool.inter(Left, Right), Target, CS);
  CS.solve();
  EXPECT_FALSE(CS.member(EffectKind::Read, A, Target));
  EXPECT_TRUE(CS.member(EffectKind::Read, B, Target));
  EXPECT_FALSE(CS.member(EffectKind::Read, C, Target));
}

TEST_F(EffectsFixture, NormalizeIntersectionWithEmptyDrops) {
  TermPool Pool;
  EffVar Target = CS.makeVar();
  LocId A = Locs.fresh();
  normalizeInclusion(
      Pool, Pool.inter(Pool.empty(), Pool.elem(EffectKind::Read, A)), Target,
      CS);
  normalizeInclusion(
      Pool, Pool.inter(Pool.elem(EffectKind::Read, A), Pool.empty()), Target,
      CS);
  CS.solve();
  EXPECT_TRUE(CS.solution(Target).empty());
}

TEST_F(EffectsFixture, NormalizeNestedIntersections) {
  // (A n A) n A <= Target keeps A's single common element.
  TermPool Pool;
  EffVar V = CS.makeVar(), Target = CS.makeVar();
  LocId X = Locs.fresh();
  CS.addElement(EffectKind::Alloc, X, V);
  TermId Inner = Pool.inter(Pool.var(V), Pool.var(V));
  normalizeInclusion(Pool, Pool.inter(Inner, Pool.var(V)), Target, CS);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Alloc, X, Target));
}

TEST_F(EffectsFixture, VarForTermReturnsExistingVarDirectly) {
  TermPool Pool;
  EffVar V = CS.makeVar();
  EXPECT_EQ(varForTerm(Pool, Pool.var(V), CS), V);
  // Non-variable terms get a fresh variable.
  LocId A = Locs.fresh();
  EffVar W = varForTerm(Pool, Pool.elem(EffectKind::Read, A), CS);
  EXPECT_NE(W, V);
  CS.solve();
  EXPECT_TRUE(CS.member(EffectKind::Read, A, W));
}

TEST_F(EffectsFixture, UniteAllFoldsLists) {
  TermPool Pool;
  EXPECT_EQ(Pool.node(Pool.uniteAll({})).K, TermPool::Kind::Empty);
  LocId A = Locs.fresh(), B = Locs.fresh();
  EffVar Target = CS.makeVar();
  TermId T = Pool.uniteAll({Pool.elem(EffectKind::Read, A),
                            Pool.elem(EffectKind::Read, B), Pool.empty()});
  normalizeInclusion(Pool, T, Target, CS);
  CS.solve();
  EXPECT_EQ(CS.solution(Target).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Fuzzer-seeded: normalization idempotence and re-canonicalization
//===----------------------------------------------------------------------===//

TEST_F(EffectsFixture, NormalizationIsIdempotent) {
  // Installing the same `L <= Target` twice must not change the least
  // solution: the Figure 4b rewriting only ever *adds* the constraints
  // the first installation already implied.
  TermPool Pool;
  LocId A = Locs.fresh();
  LocId B = Locs.fresh();
  EffVar E1 = CS.makeVar();
  CS.addElement(EffectKind::Write, B, E1);
  TermId L = Pool.unite(Pool.elem(EffectKind::Read, A),
                        Pool.inter(Pool.var(E1), Pool.var(E1)));
  EffVar Target = CS.makeVar();
  normalizeInclusion(Pool, L, Target, CS);
  ConstraintSystem Once{Locs};
  // Mirror the single installation into a sibling system over the same
  // locations to compare least solutions.
  EffVar OE1 = Once.makeVar();
  Once.addElement(EffectKind::Write, B, OE1);
  EffVar OTarget = Once.makeVar();
  normalizeInclusion(Pool, L, OTarget, Once);
  normalizeInclusion(Pool, L, Target, CS); // second installation
  CS.solve();
  Once.solve();
  EXPECT_EQ(CS.solution(Target), Once.solution(OTarget));
  EXPECT_TRUE(CS.member(EffectKind::Read, A, Target));
  EXPECT_TRUE(CS.member(EffectKind::Write, B, Target));
}

TEST_F(EffectsFixture, VarForTermIsStableAcrossCalls) {
  TermPool Pool;
  LocId A = Locs.fresh();
  TermId L = Pool.unite(Pool.elem(EffectKind::Read, A), Pool.empty());
  EffVar V1 = varForTerm(Pool, L, CS);
  EffVar V2 = varForTerm(Pool, L, CS);
  CS.solve();
  EXPECT_EQ(CS.solution(V1), CS.solution(V2));
  EXPECT_TRUE(CS.member(EffectKind::Read, A, V1));
}

TEST_F(EffectsFixture, SolutionsRecanonicalizeAfterConditionalUnify) {
  // A conditional firing unify(A, B) must fold the two locations'
  // elements together in every stored solution, so membership queries
  // through either name agree afterwards (the fuzzer's solver-agreement
  // oracle depends on this).
  EffVar V = CS.makeVar();
  EffVar W = CS.makeVar();
  LocId A = Locs.fresh();
  LocId B = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V);
  CS.addElement(EffectKind::Read, B, V);
  CS.addElement(EffectKind::Write, A, W);
  CondConstraint C;
  C.P = CondConstraint::Premise::LocInVar;
  C.Rho = A;
  C.Var = V;
  C.Actions.push_back(
      {CondAction::Kind::UnifyLocs, static_cast<uint32_t>(A),
       static_cast<uint32_t>(B)});
  CS.addConditional(std::move(C));
  CS.solve();
  EXPECT_TRUE(Locs.sameClass(A, B));
  // read(A) and read(B) collapsed into one canonical element.
  EXPECT_EQ(CS.solution(V).size(), 1u);
  // Queries through the non-representative name canonicalize too.
  EXPECT_TRUE(CS.member(EffectKind::Read, A, V));
  EXPECT_TRUE(CS.member(EffectKind::Read, B, V));
  EXPECT_TRUE(CS.member(EffectKind::Write, B, W));
  EXPECT_TRUE(CS.memberAnyKindAnyOf(B, {V}));
}

TEST_F(EffectsFixture, ChainedConditionalUnifiesRecanonicalize) {
  // Second-round firing: unifying (A, B) makes B's access visible as A's,
  // which fires a second conditional that unifies (B, C). All three
  // classes end up merged and every stored element canonical.
  EffVar V = CS.makeVar();
  LocId A = Locs.fresh();
  LocId B = Locs.fresh();
  LocId C = Locs.fresh();
  CS.addElement(EffectKind::Write, A, V);
  CondConstraint C1;
  C1.P = CondConstraint::Premise::LocInVar;
  C1.Rho = A;
  C1.Var = V;
  C1.Actions.push_back(
      {CondAction::Kind::UnifyLocs, static_cast<uint32_t>(A),
       static_cast<uint32_t>(B)});
  CS.addConditional(std::move(C1));
  CondConstraint C2;
  C2.P = CondConstraint::Premise::LocInVar;
  C2.Rho = B;
  C2.Var = V;
  C2.Actions.push_back(
      {CondAction::Kind::UnifyLocs, static_cast<uint32_t>(B),
       static_cast<uint32_t>(C)});
  CS.addConditional(std::move(C2));
  CS.solve();
  EXPECT_TRUE(Locs.sameClass(A, B));
  EXPECT_TRUE(Locs.sameClass(B, C));
  EXPECT_EQ(CS.solution(V).size(), 1u);
  EXPECT_TRUE(CS.member(EffectKind::Write, C, V));
}

TEST_F(EffectsFixture, SolutionToStringRendersElements) {
  EffVar V = CS.makeVar();
  LocId A = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V);
  CS.solve();
  std::string S = CS.solutionToString(V);
  EXPECT_NE(S.find("read(rho"), std::string::npos);
}

TEST_F(EffectsFixture, StatsCountQueriesAndFirings) {
  EffVar V = CS.makeVar();
  LocId A = Locs.fresh();
  CS.addElement(EffectKind::Read, A, V);
  CS.reachesAnyKind(A, V);
  EXPECT_GE(CS.stats().CheckSatQueries, 1u);
}

} // namespace
