//===- InferenceTest.cpp - Restrict/confine inference tests ---*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct Inferred {
  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<PipelineResult> R;

  void run(std::string_view Src, bool PlaceConfines = false,
           bool Backwards = false) {
    Prog = parse(Src, Ctx, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.render();
    PipelineOptions Opts;
    Opts.PlaceConfines = PlaceConfines;
    Opts.UseBackwardsSearch = Backwards;
    R = runPipeline(Ctx, *Prog, Opts, Diags);
    ASSERT_TRUE(R.has_value()) << Diags.render();
  }

  /// The bind node for variable \p Name (first match).
  const BindInfo *bindOf(const std::string &Name) {
    Symbol S = Ctx.intern(Name);
    for (const BindInfo &BI : R->Alias.Binds) {
      const auto *B = cast<BindExpr>(Ctx.expr(BI.Id));
      if (B->name() == S)
        return &BI;
    }
    return nullptr;
  }

  bool inferredRestrict(const std::string &Name) {
    const BindInfo *BI = bindOf(Name);
    EXPECT_NE(BI, nullptr);
    return BI && R->Inference.RestrictableBinds.count(BI->Id) != 0;
  }
};

//===----------------------------------------------------------------------===//
// Restrict inference (Section 5)
//===----------------------------------------------------------------------===//

TEST(RestrictInference, UnaliasedLetBecomesRestrict) {
  Inferred I;
  I.run("fun f(q : ptr int) : int { let p = q in *p }");
  EXPECT_TRUE(I.inferredRestrict("p"));
}

TEST(RestrictInference, AliasUseInBodyPreventsRestrict) {
  Inferred I;
  I.run("fun f(q : ptr int) : int { let p = q in { *p; *q } }");
  EXPECT_FALSE(I.inferredRestrict("p"));
}

TEST(RestrictInference, EscapePreventsRestrict) {
  Inferred I;
  I.run("var x : ptr int;\n"
        "fun f(q : ptr int) : int { let p = q in { x := p; 0 } }");
  EXPECT_FALSE(I.inferredRestrict("p"));
}

TEST(RestrictInference, ReturnEscapePreventsRestrict) {
  Inferred I;
  I.run("fun f(q : ptr int) : ptr int { let p = q in p }");
  EXPECT_FALSE(I.inferredRestrict("p"));
}

TEST(RestrictInference, UnusedBindingIsRestrictable) {
  Inferred I;
  I.run("fun f(q : ptr int) : int { let p = q in 0 }");
  EXPECT_TRUE(I.inferredRestrict("p"));
}

TEST(RestrictInference, IntBindingsAreNeverCandidates) {
  Inferred I;
  I.run("fun f() : int { let n = 3 in n + 1 }");
  const BindInfo *BI = I.bindOf("n");
  ASSERT_NE(BI, nullptr);
  EXPECT_FALSE(BI->IsPointer);
  EXPECT_TRUE(I.R->Inference.RestrictableBinds.empty());
}

TEST(RestrictInference, MutuallyInterferingBindingsBothStayLets) {
  Inferred I;
  I.run("fun f(q : ptr int) : int {\n"
        "  let a = q in let b = q in { *a; *b }\n}");
  // Each binder's scope accesses the location through the *other* name,
  // so neither satisfies (Restrict): the maximum restrictable set is
  // empty here.
  EXPECT_FALSE(I.inferredRestrict("a"));
  EXPECT_FALSE(I.inferredRestrict("b"));
}

TEST(RestrictInference, InnerBindingRestrictableWhenOuterUseIsOutside) {
  Inferred I;
  I.run("fun f(q : ptr int) : int {\n"
        "  let a = q in { *a; let b = q in *b }\n}");
  // *b inside a's scope kills a; b's own scope contains only *b.
  EXPECT_FALSE(I.inferredRestrict("a"));
  EXPECT_TRUE(I.inferredRestrict("b"));
}

TEST(RestrictInference, ChainedCopiesStayRestrictable) {
  Inferred I;
  // A local copy inside the scope is allowed (Section 2's third example).
  I.run("fun f(q : ptr int) : int { let p = q in let r = p in *r }");
  EXPECT_TRUE(I.inferredRestrict("p"));
  EXPECT_TRUE(I.inferredRestrict("r"));
}

TEST(RestrictInference, MaximumSetIsUniqueAndSound) {
  // A mix: one binding that must stay a let (its location is also used
  // through the original name inside its scope) next to one that can be
  // restricted; the least solution restricts exactly the latter.
  Inferred I;
  I.run("fun f(x : ptr int, w : ptr int) : int {\n"
        "  let y = x in { *y; *x };\n"
        "  let z = w in *z\n}");
  EXPECT_FALSE(I.inferredRestrict("y"));
  EXPECT_TRUE(I.inferredRestrict("z"));
}

TEST(RestrictInference, WriteAccessAlsoCounts) {
  Inferred I;
  I.run("fun f(q : ptr int) : int { let p = q in { q := 3; *p } }");
  EXPECT_FALSE(I.inferredRestrict("p"));
}

TEST(RestrictInference, SiblingScopesDoNotInterfere) {
  Inferred I;
  I.run("fun f(q : ptr int) : int {\n"
        "  let a = q in *a;\n"
        "  let b = q in *b\n}");
  EXPECT_TRUE(I.inferredRestrict("a"));
  EXPECT_TRUE(I.inferredRestrict("b"));
}

TEST(RestrictInference, ExplicitRestrictViolationIsReported) {
  Inferred I;
  I.run("fun f(q : ptr int) : int { restrict p = q in { *p; *q } }");
  EXPECT_FALSE(I.R->Inference.Violations.empty());
}

TEST(RestrictInference, ExplicitValidRestrictHasNoViolations) {
  Inferred I;
  I.run("fun f(q : ptr int) : int { restrict p = q in *p }");
  EXPECT_TRUE(I.R->Inference.Violations.empty());
}

TEST(RestrictInference, CastTaintedLocationIsNotRestrictable) {
  Inferred I;
  I.run("var raw : ptr int;\n"
        "fun f() : int { let p = cast<ptr lock>(*raw) in 0 }");
  EXPECT_FALSE(I.inferredRestrict("p"));
}

TEST(RestrictInference, CalleeAccessThroughAliasPreventsRestrict) {
  Inferred I;
  // touch() accesses *q; calling it inside p's scope accesses rho through
  // a name other than p.
  I.run("fun touch(q : ptr int) : int { *q }\n"
        "fun f(q : ptr int) : int { let p = q in { touch(q); *p } }");
  EXPECT_FALSE(I.inferredRestrict("p"));
}

TEST(RestrictInference, CalleeAccessThroughTheBinderItselfIsFine) {
  Inferred I;
  I.run("fun touch(q : ptr int) : int { *q }\n"
        "fun f(q : ptr int) : int { let p = q in touch(p) }");
  EXPECT_TRUE(I.inferredRestrict("p"));
}

TEST(RestrictInference, BackwardsSearchGivesSameResults) {
  const char *Src = "var x : ptr int;\n"
                    "fun f(q : ptr int, r : ptr int) : int {\n"
                    "  let a = q in *a;\n"
                    "  let b = q in { x := b; 0 };\n"
                    "  let c = r in { *r; *c }\n}";
  Inferred Full, Back;
  Full.run(Src, false, false);
  Back.run(Src, false, true);
  auto Names = {"a", "b", "c"};
  for (const char *N : Names)
    EXPECT_EQ(Full.inferredRestrict(N), Back.inferredRestrict(N)) << N;
}

//===----------------------------------------------------------------------===//
// Confine inference (Section 6) -- explicit confines in inference mode
// and automatically placed confine? candidates.
//===----------------------------------------------------------------------===//

TEST(ConfineInference, ExplicitConfineVerifiesInInferMode) {
  Inferred I;
  I.run("var locks : array lock;\n"
        "fun f(i : int) : int {\n"
        "  confine locks[i] in { spin_lock(locks[i]);"
        " spin_unlock(locks[i]) } }");
  EXPECT_TRUE(I.R->Inference.Violations.empty());
  EXPECT_EQ(I.R->Inference.SucceededConfines.size(), 1u);
}

TEST(ConfineInference, PlacementInsertsAndVerifiesCandidates) {
  Inferred I;
  I.run("var locks : array lock;\n"
        "fun f(i : int) : int {\n"
        "  spin_lock(locks[i]); work(); spin_unlock(locks[i]) }",
        /*PlaceConfines=*/true);
  EXPECT_FALSE(I.R->OptionalConfines.empty());
  EXPECT_FALSE(I.R->Inference.SucceededConfines.empty());
}

TEST(ConfineInference, FailedCandidateIsNotAnError) {
  Inferred I;
  // The subject escapes within the scope: the candidate fails, silently.
  I.run("var locks : array lock;\nvar saved : ptr lock;\n"
        "fun f(i : int) : int {\n"
        "  spin_lock(locks[i]);\n"
        "  saved := locks[i];\n"
        "  work();\n"
        "  spin_unlock(locks[i]) }",
        /*PlaceConfines=*/true);
  EXPECT_TRUE(I.R->Inference.Violations.empty());
  // Every candidate containing the escape fails. (Singleton-statement
  // candidates around just the lock or just the unlock may still
  // succeed.)
  for (ExprId Id : I.R->Inference.SucceededConfines) {
    const ConfineSiteInfo *CSI = I.R->Alias.confineInfo(Id);
    ASSERT_NE(CSI, nullptr);
    const auto *Conf = cast<ConfineExpr>(I.Ctx.expr(Id));
    const auto *Body = cast<BlockExpr>(Conf->body());
    EXPECT_LE(Body->stmts().size(), 1u);
  }
}

TEST(ConfineInference, SubjectWithSideEffectsNeverConfined) {
  Inferred I;
  // *cell reads mutable state that the body writes: not referentially
  // transparent.
  I.run("var g2 : lock;\nvar cell : ptr lock;\n"
        "fun f() : int {\n"
        "  spin_lock(*cell);\n"
        "  cell := g2;\n"
        "  spin_unlock(*cell) }",
        /*PlaceConfines=*/true);
  // The wide candidate spanning the write must fail; the lock state is
  // not recovered for the unlock.
  for (ExprId Id : I.R->Inference.SucceededConfines) {
    const auto *Conf = cast<ConfineExpr>(I.Ctx.expr(Id));
    const auto *Body = cast<BlockExpr>(Conf->body());
    EXPECT_LE(Body->stmts().size(), 1u);
  }
}

TEST(ConfineInference, ScopeChainSelectsOutermostSucceeding) {
  Inferred I;
  // Lock/unlock at top level of the function body: the whole-body
  // candidate succeeds.
  I.run("var locks : array lock;\n"
        "fun f(i : int) : int {\n"
        "  spin_lock(locks[i]);\n"
        "  if nondet() then work() else work();\n"
        "  spin_unlock(locks[i]) }",
        /*PlaceConfines=*/true);
  bool FoundWide = false;
  for (ExprId Id : I.R->Inference.SucceededConfines) {
    const auto *Conf = cast<ConfineExpr>(I.Ctx.expr(Id));
    const auto *Body = cast<BlockExpr>(Conf->body());
    FoundWide |= Body->stmts().size() == 3;
  }
  EXPECT_TRUE(FoundWide);
}

TEST(ConfineInference, NestedConfinesOfDifferentLocksBothSucceed) {
  Inferred I;
  I.run("var a : array lock;\nvar b : array lock;\n"
        "fun f(i : int, j : int) : int {\n"
        "  spin_lock(a[i]);\n"
        "  spin_lock(b[j]);\n"
        "  work();\n"
        "  spin_unlock(b[j]);\n"
        "  spin_unlock(a[i]) }",
        /*PlaceConfines=*/true);
  // At least two distinct subjects succeeded.
  std::set<std::string> Subjects;
  for (ExprId Id : I.R->Inference.SucceededConfines) {
    const ConfineSiteInfo *CSI = I.R->Alias.confineInfo(Id);
    const auto *Idx = dyn_cast<IndexExpr>(CSI->Subject);
    ASSERT_NE(Idx, nullptr);
    Subjects.insert(
        I.Ctx.text(cast<VarRefExpr>(Idx->array())->name()));
  }
  EXPECT_EQ(Subjects.size(), 2u);
}

TEST(ConfineInference, UntrackableSubjectFails) {
  Inferred I;
  I.run("var raw : ptr int;\n"
        "fun f() : int {\n"
        "  let p = cast<ptr lock>(*raw) in {\n"
        "    spin_lock(p); work(); spin_unlock(p) } }",
        /*PlaceConfines=*/true);
  EXPECT_TRUE(I.R->Inference.SucceededConfines.empty());
}

TEST(ConfineInference, OccurrencesShareTheConfinedLocation) {
  Inferred I;
  I.run("var locks : array lock;\n"
        "fun f(i : int) : int {\n"
        "  spin_lock(locks[i]); work(); spin_unlock(locks[i]) }",
        /*PlaceConfines=*/true);
  // Find a succeeded multi-statement confine and check both lock sites'
  // arguments point at its rho'.
  for (ExprId Id : I.R->Inference.SucceededConfines) {
    const ConfineSiteInfo *CSI = I.R->Alias.confineInfo(Id);
    const auto *Conf = cast<ConfineExpr>(I.Ctx.expr(Id));
    const auto *Body = dyn_cast<BlockExpr>(Conf->body());
    if (!Body || Body->stmts().size() != 3)
      continue;
    const LocTable &Locs = I.R->State->Locs;
    const TypeTable &Types = I.R->State->Types;
    for (const LockSite &LS : I.R->Alias.LockSites) {
      TypeId T = I.R->Alias.ExprType[LS.Arg->id()];
      // The innermost confine wins occurrence typing; its rho chains up
      // to this confine's rho' or equals it.
      EXPECT_TRUE(Types.isPointerLike(T));
    }
    EXPECT_TRUE(Locs.isLinear(CSI->RhoPrime));
  }
}

} // namespace
