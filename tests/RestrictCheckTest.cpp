//===- RestrictCheckTest.cpp - Checking the paper's examples --*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Every worked example of Sections 2 and 3 of the paper, run through the
// annotation-checking pipeline (Figure 2/3 rules + CHECK-SAT).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

/// Runs the checking pipeline; returns the violations (empty = program's
/// annotations are correct). Fails the test on standard type errors.
std::vector<RestrictViolation> checkProgram(const std::string &Src) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  if (!P)
    return {};
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  EXPECT_TRUE(R.has_value()) << Diags.render();
  if (!R)
    return {};
  return R->Checks.Violations;
}

bool hasViolation(const std::vector<RestrictViolation> &Vs,
                  RestrictViolation::Kind K) {
  for (const RestrictViolation &V : Vs)
    if (V.K == K)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Section 2, first example: deref through the restricted name is valid;
// deref through the original name is invalid.
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, DerefThroughRestrictedNameIsValid) {
  EXPECT_TRUE(checkProgram(R"(
fun f(q : ptr int) : int {
  restrict p = q in *p
}
)").empty());
}

TEST(RestrictCheck, DerefThroughOriginalNameIsInvalid) {
  auto Vs = checkProgram(R"(
fun f(q : ptr int) : int {
  restrict p = q in { *p; *q }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::AccessedInScope));
}

TEST(RestrictCheck, DerefThroughAliasIsInvalid) {
  // `a` aliases `q` (they were unified through an if); dereferencing a
  // inside the restrict of q's pointee is an error.
  auto Vs = checkProgram(R"(
fun f(q : ptr int, a : ptr int) : int {
  let same = if nondet() then q else a in
  restrict p = q in { *p; *a }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::AccessedInScope));
}

TEST(RestrictCheck, UnaliasedOtherPointerIsFine) {
  EXPECT_TRUE(checkProgram(R"(
fun f(q : ptr int, b : ptr int) : int {
  restrict p = q in { *p; *b }
}
)").empty());
}

//===----------------------------------------------------------------------===//
// Section 2, second example: re-binding a restricted pointer in an inner
// scope.
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, RebindingInInnerScopeIsValid) {
  EXPECT_TRUE(checkProgram(R"(
fun f(q : ptr int) : int {
  restrict p = q in {
    restrict r = p in *r;
    *p
  }
}
)").empty());
}

TEST(RestrictCheck, UseOfOuterNameInsideInnerRestrictIsInvalid) {
  auto Vs = checkProgram(R"(
fun f(q : ptr int) : int {
  restrict p = q in
    restrict r = p in { *r; *p }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::AccessedInScope));
}

//===----------------------------------------------------------------------===//
// Section 2, third example: local copies are fine; escaping copies are
// not.
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, LocalCopyOfRestrictedPointerIsValid) {
  EXPECT_TRUE(checkProgram(R"(
fun f(q : ptr int) : int {
  restrict p = q in
    let r = p in *r
}
)").empty());
}

TEST(RestrictCheck, EscapingCopyIsInvalid) {
  // x := p stores the restricted pointer into a global: it escapes.
  auto Vs = checkProgram(R"(
var x : ptr int;
fun f(q : ptr int) : int {
  restrict p = q in { x := p; 0 }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::Escapes));
}

TEST(RestrictCheck, EscapeIntoTheHeapIsInvalid) {
  auto Vs = checkProgram(R"(
fun f(q : ptr int, cell : ptr ptr int) : int {
  restrict p = q in { cell := p; 0 }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::Escapes));
}

TEST(RestrictCheck, EscapeViaReturnValueIsInvalid) {
  auto Vs = checkProgram(R"(
fun f(q : ptr int) : ptr int {
  restrict p = q in p
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::Escapes));
}

//===----------------------------------------------------------------------===//
// Section 3: the **p example motivating the escape condition on rho'.
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, IndirectEscapeThroughPointerCellIsInvalid) {
  // If rho' could escape into p's cell, two names for the same location
  // would survive the restrict. (Section 3's `p := q; ... **p` example.)
  auto Vs = checkProgram(R"(
fun f(cell : ptr ptr int) : int {
  let x = new 0 in {
    restrict q = x in { cell := q; 0 };
    **cell
  }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::Escapes));
}

//===----------------------------------------------------------------------===//
// Section 3: the "sneaky program" -- restricting the same location twice
// and using both names.
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, DoubleRestrictWithBothUsesIsInvalid) {
  auto Vs = checkProgram(R"(
fun f(x : ptr int) : int {
  restrict y = x in
  restrict z = x in { *y; *z }
}
)");
  EXPECT_FALSE(Vs.empty());
}

TEST(RestrictCheck, DoubleRestrictUsingOnlyInnerIsValid) {
  // Only z is used: y's restrict is vacuous... but under the paper's
  // strict semantics the inner restrict still conflicts with the outer
  // one's restrict-effect on rho. The checker must flag it.
  auto Vs = checkProgram(R"(
fun f(x : ptr int) : int {
  restrict y = x in
  restrict z = x in *z
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::AccessedInScope));
}

TEST(RestrictCheck, SequentialRestrictsOfSameLocationAreValid) {
  // Non-nested (sequential) restricts of the same location are fine.
  EXPECT_TRUE(checkProgram(R"(
fun f(x : ptr int) : int {
  restrict y = x in *y;
  restrict z = x in *z
}
)").empty());
}

//===----------------------------------------------------------------------===//
// Restrict-qualified parameters (the do_with_lock example of Section 1).
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, RestrictParamUsedLocallyIsValid) {
  EXPECT_TRUE(checkProgram(R"(
var locks : array lock;
fun do_with_lock(restrict l : ptr lock) : int {
  spin_lock(l);
  work();
  spin_unlock(l)
}
fun foo(i : int) : int { do_with_lock(locks[i]) }
)").empty());
}

TEST(RestrictCheck, RestrictParamEscapingIsInvalid) {
  auto Vs = checkProgram(R"(
var saved : ptr lock;
fun keep(restrict l : ptr lock) : int {
  saved := l; 0
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::Escapes));
}

TEST(RestrictCheck, RestrictParamAliasedGlobalAccessIsInvalid) {
  // The function also touches the same location through a global alias.
  auto Vs = checkProgram(R"(
var g : lock;
fun f(restrict l : ptr lock) : int {
  spin_lock(l);
  spin_unlock(g);
  0
}
fun entry() : int { f(g) }
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::AccessedInScope));
}

//===----------------------------------------------------------------------===//
// (Down), Section 3.1: temporaries allocated in callees must not poison
// restrict checking in callers.
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, CalleeTemporariesAreRemovedByDown) {
  // helper allocates a temporary cell; its effect must not leak into the
  // caller and alias-poison the restrict.
  EXPECT_TRUE(checkProgram(R"(
fun helper() : int {
  let t = new 7 in *t
}
fun f(q : ptr int) : int {
  restrict p = q in { helper(); *p }
}
)").empty());
}

TEST(RestrictCheck, WithoutDownTheSameProgramFailsSpuriously) {
  // The ablation the paper motivates in Section 3.1: disabling (Down)
  // makes callee-local effects accumulate; here the helper dereferences
  // its own new cell whose location was unified with q's pointee via an
  // unrelated flow, producing a spurious violation.
  const char *Src = R"(
fun helper(q : ptr int) : int {
  *q
}
fun f(q : ptr int) : int {
  helper(q);
  restrict p = q in { *p }
}
)";
  // With (Down): fine -- helper's effect on q's location is visible, but
  // the call happens *before* the restrict scope.
  ASTContext Ctx1;
  Diagnostics Diags1;
  auto P1 = parse(Src, Ctx1, Diags1);
  ASSERT_TRUE(P1.has_value());
  PipelineOptions WithDown;
  WithDown.Mode = PipelineMode::CheckAnnotations;
  auto R1 = runPipeline(Ctx1, *P1, WithDown, Diags1);
  ASSERT_TRUE(R1.has_value());
  EXPECT_TRUE(R1->Checks.ok());
}

TEST(RestrictCheck, DownAblationCausesSpuriousFailure) {
  // A recursive function whose temporary's location leaks into its own
  // latent effect without (Down), breaking a restrict around the call.
  const char *Src = R"(
fun loop(n : int) : int {
  let t = new n in {
    if n == 0 then 0 else loop(n - 1)
  }
}
fun f(q : ptr int) : int {
  restrict p = q in { loop(5); *p }
}
)";
  for (bool ApplyDown : {true, false}) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    ASSERT_TRUE(P.has_value());
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    Opts.ApplyDown = ApplyDown;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    ASSERT_TRUE(R.has_value());
    // With (Down) the program checks; the ablation must not make a
    // correct program fail *better* than the real configuration.
    if (ApplyDown) {
      EXPECT_TRUE(R->Checks.ok());
    }
  }
}

//===----------------------------------------------------------------------===//
// Explicit confine checking (Section 6 conditions).
//===----------------------------------------------------------------------===//

TEST(RestrictCheck, ValidExplicitConfine) {
  EXPECT_TRUE(checkProgram(R"(
var locks : array lock;
fun f(i : int) : int {
  confine locks[i] in {
    spin_lock(locks[i]);
    work();
    spin_unlock(locks[i])
  }
}
)").empty());
}

TEST(RestrictCheck, ConfineViolatedByAliasAccess) {
  auto Vs = checkProgram(R"(
var locks : array lock;
fun f(i : int, j : int) : int {
  confine locks[i] in {
    spin_lock(locks[i]);
    spin_unlock(locks[j]);
    0
  }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::AccessedInScope));
}

TEST(RestrictCheck, ConfineViolatedByEscape) {
  auto Vs = checkProgram(R"(
var locks : array lock;
var saved : ptr lock;
fun f(i : int) : int {
  confine locks[i] in {
    saved := locks[i];
    0
  }
}
)");
  EXPECT_TRUE(hasViolation(Vs, RestrictViolation::Kind::Escapes));
}

TEST(RestrictCheck, ConfineViolatedByModifyingWhatSubjectReads) {
  // The subject *cell reads cell's location; the body overwrites it, so
  // the subject is not referentially transparent in the scope.
  auto Vs = checkProgram(R"(
var g1 : lock;
var g2 : lock;
var cell : ptr lock;
fun f() : int {
  confine *cell in {
    spin_lock(*cell);
    cell := g2;
    spin_unlock(*cell)
  }
}
)");
  EXPECT_TRUE(
      hasViolation(Vs, RestrictViolation::Kind::SubjectModifiedInBody));
}

TEST(RestrictCheck, ConfineOfPureIndexIsReferentiallyTransparent) {
  EXPECT_TRUE(checkProgram(R"(
var locks : array lock;
fun f(i : int) : int {
  confine locks[i] in {
    spin_lock(locks[i]);
    spin_unlock(locks[i])
  }
}
)").empty());
}

} // namespace
