//===- IntegrationTest.cpp - Section 7 experiment assertions --*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Runs the full Section 7 experiment over the corpus and asserts the
// paper's aggregate statistics, Figure 6 shape, and Figure 7 rows.
//
//===----------------------------------------------------------------------===//

#include "corpus/Experiment.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

const CorpusSummary &summary() {
  static const CorpusSummary S = runCorpusExperiment(generateCorpus());
  return S;
}

TEST(Experiment, AllModulesAnalyzeCleanly) {
  for (const ModuleResult &M : summary().Modules)
    EXPECT_TRUE(M.Ok) << M.Name;
}

TEST(Experiment, SummaryStatisticsMatchThePaper) {
  const CorpusSummary &S = summary();
  EXPECT_EQ(S.TotalModules, 589u);
  EXPECT_EQ(S.ErrorFree, 352u);
  EXPECT_EQ(S.ErrorsUnrelatedToStrongUpdates, 85u);
  EXPECT_EQ(S.ConfineCanMatter, 152u);
  EXPECT_EQ(S.FullyRecovered, 138u);
}

TEST(Experiment, EliminationTotalsMatchThePaper) {
  const CorpusSummary &S = summary();
  EXPECT_EQ(S.PotentialEliminations, 3277u);
  EXPECT_EQ(S.ActualEliminations, 3116u);
  EXPECT_NEAR(S.eliminationRate(), 0.95, 0.005);
}

TEST(Experiment, EveryModuleMatchesItsPrediction) {
  for (const ModuleResult &M : summary().Modules)
    EXPECT_TRUE(M.Expected == M.Actual) << M.Name;
}

TEST(Experiment, Figure6HistogramCovers152Modules) {
  auto Hist = summary().eliminationHistogram();
  uint32_t Total = 0;
  for (const auto &[Eliminated, Count] : Hist)
    Total += Count;
  EXPECT_EQ(Total, 152u);
}

TEST(Experiment, Figure6ShapeIsHeavyNearZeroWithALongTail) {
  auto Hist = summary().eliminationHistogram();
  // A majority of affected modules eliminate few errors...
  uint32_t Small = 0, Large = 0;
  uint32_t MaxEliminated = 0;
  for (const auto &[Eliminated, Count] : Hist) {
    if (Eliminated <= 10)
      Small += Count;
    if (Eliminated >= 40)
      Large += Count;
    MaxEliminated = std::max(MaxEliminated, Eliminated);
  }
  EXPECT_GT(Small, 70u);
  // ...while a long tail reaches large counts (the paper's x axis runs to
  // ~90; emu10k1 eliminates 138).
  EXPECT_GT(Large, 5u);
  EXPECT_GE(MaxEliminated, 80u);
}

TEST(Experiment, Figure7RowsReproduce) {
  struct Row {
    const char *Name;
    uint32_t NoConf, Conf, Strong;
  };
  const Row Rows[] = {
      {"wavelan_cs", 22, 16, 15}, {"trix", 29, 24, 22},
      {"netrom", 41, 25, 0},      {"rose", 47, 28, 0},
      {"usb_ohci", 32, 26, 17},   {"uhci", 74, 45, 34},
      {"sb", 31, 24, 22},         {"ide_tape", 58, 47, 41},
      {"mad16", 29, 24, 22},      {"emu10k1", 198, 60, 35},
      {"trident", 107, 49, 36},   {"digi_acceleport", 62, 32, 4},
      {"sbni", 23, 16, 9},        {"iph5526", 39, 34, 32},
  };
  const CorpusSummary &S = summary();
  for (const Row &R : Rows) {
    const ModuleResult *Found = nullptr;
    for (const ModuleResult &M : S.Modules)
      if (M.Name == R.Name)
        Found = &M;
    ASSERT_NE(Found, nullptr) << R.Name;
    EXPECT_EQ(Found->Actual.NoConfine, R.NoConf) << R.Name;
    EXPECT_EQ(Found->Actual.ConfineInference, R.Conf) << R.Name;
    EXPECT_EQ(Found->Actual.AllStrong, R.Strong) << R.Name;
  }
}

TEST(Experiment, HardModulesAreThe14PartialRecoveries) {
  const CorpusSummary &S = summary();
  uint32_t Partial = 0;
  for (const ModuleResult &M : S.Modules) {
    bool ConfineMatters = M.Actual.NoConfine > M.Actual.AllStrong;
    bool Partially = ConfineMatters &&
                     M.Actual.ConfineInference > M.Actual.AllStrong;
    if (Partially) {
      ++Partial;
      EXPECT_EQ(M.Category, ModuleCategory::Hard) << M.Name;
    }
  }
  EXPECT_EQ(Partial, 14u);
}

TEST(Experiment, ErrorFreeModulesAreErrorFreeInEveryMode) {
  for (const ModuleResult &M : summary().Modules) {
    if (M.Actual.NoConfine != 0)
      continue;
    EXPECT_EQ(M.Actual.ConfineInference, 0u) << M.Name;
    EXPECT_EQ(M.Actual.AllStrong, 0u) << M.Name;
  }
}

} // namespace
