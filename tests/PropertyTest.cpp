//===- PropertyTest.cpp - Cross-cutting invariants ------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Property-style sweeps over generated programs and random constraint
// systems:
//
//  * inference soundness: materializing the inferred restricts (rewriting
//    the inferred `let`s as explicit `restrict`s) yields a program the
//    *checker* accepts, and marking any single non-inferred pointer `let`
//    as restrict is rejected -- i.e. the inferred set is exactly the
//    unique maximum (Section 5's optimality);
//  * analysis-mode monotonicity over the corpus generator's modules;
//  * backwards-search solver equivalence on whole modules;
//  * least-solution minimality vs. brute-force fixpoints on random
//    systems.
//
//===----------------------------------------------------------------------===//

#include "corpus/Experiment.h"
#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

//===----------------------------------------------------------------------===//
// Inference soundness and maximality
//===----------------------------------------------------------------------===//

/// Programs with interesting let/alias structure for the soundness sweep.
const char *SoundnessPrograms[] = {
    "fun f(q : ptr int) : int { let p = q in *p }",
    "fun f(q : ptr int) : int { let p = q in { *p; *q } }",
    "var x : ptr int;\n"
    "fun f(q : ptr int) : int { let p = q in { x := p; 0 } }",
    "fun f(q : ptr int) : int { let p = q in let r = p in *r }",
    "fun f(q : ptr int) : int {\n"
    "  let a = q in *a;\n"
    "  let b = q in *b\n}",
    "fun f(q : ptr int) : int {\n"
    "  let a = q in { *a; let b = q in *b }\n}",
    "fun touch(q : ptr int) : int { *q }\n"
    "fun f(q : ptr int) : int { let p = q in { touch(q); *p } }",
    "fun touch(q : ptr int) : int { *q }\n"
    "fun f(q : ptr int) : int { let p = q in touch(p) }",
    "var a : array lock;\n"
    "fun f(i : int) : int {\n"
    "  let p = a[i] in { spin_lock(p); work(); spin_unlock(p) } }",
    "fun f(q : ptr int, w : ptr int) : int {\n"
    "  let y = q in { *y; *q };\n"
    "  let z = w in *z\n}",
    "fun f(q : ptr ptr int) : int { let p = q in { **p } }",
    "fun f(q : ptr int) : ptr int { let p = q in p }",
};

struct InferThenCheck : ::testing::TestWithParam<const char *> {};

/// Prints the program with the inferred restricts materialized, then runs
/// the annotation checker over it.
bool materializedProgramChecks(const char *Src,
                               const std::set<ExprId> &ExtraRestricts) {
  // Round 1: infer.
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  PipelineOptions Opts;
  Opts.PlaceConfines = false;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  EXPECT_TRUE(R.has_value()) << Diags.render();

  PrintOverlay Overlay;
  Overlay.BindAsRestrict = R->Inference.RestrictableBinds;
  for (ExprId Id : ExtraRestricts)
    Overlay.BindAsRestrict.insert(Id);
  std::string Materialized = AstPrinter(Ctx, &Overlay).print(R->Analyzed);

  // Round 2: check the materialized program.
  ASTContext Ctx2;
  Diagnostics Diags2;
  auto P2 = parse(Materialized, Ctx2, Diags2);
  EXPECT_TRUE(P2.has_value()) << Diags2.render() << "\n" << Materialized;
  if (!P2)
    return false;
  PipelineOptions CheckOpts;
  CheckOpts.Mode = PipelineMode::CheckAnnotations;
  // Inference uses the liberal restrict-effect semantics (Section 5,
  // footnote 2); check the materialized annotations under the same.
  CheckOpts.LiberalRestrictEffect = true;
  auto R2 = runPipeline(Ctx2, *P2, CheckOpts, Diags2);
  EXPECT_TRUE(R2.has_value()) << Diags2.render();
  if (!R2)
    return false;
  return R2->Checks.ok();
}

TEST_P(InferThenCheck, InferredRestrictsPassTheChecker) {
  EXPECT_TRUE(materializedProgramChecks(GetParam(), {}));
}

TEST_P(InferThenCheck, InferredSetIsMaximal) {
  // Adding any single non-inferred pointer let as restrict must fail the
  // checker (otherwise the inferred set was not maximum).
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(GetParam(), Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  Opts.PlaceConfines = false;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  for (const BindInfo &BI : R->Alias.Binds) {
    if (!BI.IsPointer || BI.ExplicitRestrict)
      continue;
    if (R->Inference.RestrictableBinds.count(BI.Id))
      continue;
    EXPECT_FALSE(materializedProgramChecks(GetParam(), {BI.Id}))
        << "bind " << BI.Id << " was not inferred but passes checking";
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, InferThenCheck,
                         ::testing::ValuesIn(SoundnessPrograms));

//===----------------------------------------------------------------------===//
// Analysis-mode monotonicity over generated modules
//===----------------------------------------------------------------------===//

struct ModeMonotonicity
    : ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(ModeMonotonicity, StrongLeqConfineLeqNoConfine) {
  auto [CatIdx, Seed] = GetParam();
  ModuleCategory Cat = static_cast<ModuleCategory>(CatIdx);
  ModuleSpec M = generateModule(Cat, Seed + 1, 4 + Seed % 5);
  ModuleModeResult R = analyzeModuleAllModes(M.Source);
  ASSERT_TRUE(R.Ok) << R.Error;
  // All-strong is the upper bound on what confine can recover; confine
  // never makes things worse than no confine.
  EXPECT_LE(R.Counts.AllStrong, R.Counts.ConfineInference);
  EXPECT_LE(R.Counts.ConfineInference, R.Counts.NoConfine);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModeMonotonicity,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Range(0u, 8u)));

//===----------------------------------------------------------------------===//
// Backwards-search equivalence on whole modules
//===----------------------------------------------------------------------===//

struct BackwardsEquivalence : ::testing::TestWithParam<uint32_t> {};

TEST_P(BackwardsEquivalence, SameInferenceResults) {
  ModuleSpec M =
      generateModule(ModuleCategory::Recoverable, GetParam() + 11, 8);
  auto Run = [&](bool Backwards) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(M.Source, Ctx, Diags);
    EXPECT_TRUE(P.has_value());
    PipelineOptions Opts;
    Opts.UseBackwardsSearch = Backwards;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value());
    // Compare the *shape* of the results (counts are id-stable across the
    // two runs because parsing is deterministic).
    return std::make_pair(R->Inference.RestrictableBinds,
                          R->Inference.SucceededConfines);
  };
  auto Full = Run(false);
  auto Back = Run(true);
  EXPECT_EQ(Full.first, Back.first);
  EXPECT_EQ(Full.second, Back.second);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BackwardsEquivalence,
                         ::testing::Range(0u, 10u));

//===----------------------------------------------------------------------===//
// Least-solution minimality vs. brute force on random systems
//===----------------------------------------------------------------------===//

struct LeastSolution : ::testing::TestWithParam<uint32_t> {};

TEST_P(LeastSolution, PropagationMatchesNaiveFixpoint) {
  uint64_t S = (GetParam() + 1) * 0x9e3779b97f4a7c15ULL;
  auto Next = [&S]() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  LocTable Locs;
  ConstraintSystem CS(Locs);
  const int NumVars = 12;
  const int NumLocs = 5;
  std::vector<EffVar> Vars;
  std::vector<LocId> Ls;
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(CS.makeVar());
  for (int I = 0; I < NumLocs; ++I)
    Ls.push_back(Locs.fresh());

  struct Edge {
    int From, To;
  };
  struct Seed {
    int Kind, Loc, Var;
  };
  struct Inter {
    int A, B, Out;
  };
  std::vector<Edge> Edges;
  std::vector<Seed> Seeds;
  std::vector<Inter> Inters;
  for (int I = 0; I < 8; ++I)
    Seeds.push_back({int(Next() % 3), int(Next() % NumLocs),
                     int(Next() % NumVars)});
  for (int I = 0; I < 14; ++I)
    Edges.push_back({int(Next() % NumVars), int(Next() % NumVars)});
  for (int I = 0; I < 4; ++I)
    Inters.push_back({int(Next() % NumVars), int(Next() % NumVars),
                      int(Next() % NumVars)});

  for (const Seed &X : Seeds)
    CS.addElement(static_cast<EffectKind>(X.Kind), Ls[X.Loc], Vars[X.Var]);
  for (const Edge &E : Edges)
    CS.addEdge(Vars[E.From], Vars[E.To]);
  for (const Inter &I : Inters)
    CS.addIntersection(InterOperand::var(Vars[I.A]),
                       InterOperand::var(Vars[I.B]), Vars[I.Out]);
  CS.solve();

  // Naive fixpoint over explicit sets.
  using Set = std::set<std::pair<int, int>>; // (kind, loc index)
  std::vector<Set> Sol(NumVars);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Seed &X : Seeds)
      Changed |= Sol[X.Var].insert({X.Kind, X.Loc}).second;
    for (const Edge &E : Edges)
      for (const auto &El : Sol[E.From])
        Changed |= Sol[E.To].insert(El).second;
    for (const Inter &I : Inters)
      for (const auto &El : Sol[I.A])
        if (Sol[I.B].count(El))
          Changed |= Sol[I.Out].insert(El).second;
  }

  for (int V = 0; V < NumVars; ++V) {
    EXPECT_EQ(CS.solution(Vars[V]).size(), Sol[V].size()) << "var " << V;
    for (const auto &[K, L] : Sol[V])
      EXPECT_TRUE(
          CS.member(static_cast<EffectKind>(K), Ls[L], Vars[V]))
          << "var " << V;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeastSolution, ::testing::Range(0u, 25u));

//===----------------------------------------------------------------------===//
// Qual determinism
//===----------------------------------------------------------------------===//

struct QualDeterminism : ::testing::TestWithParam<uint32_t> {};

TEST_P(QualDeterminism, RepeatedAnalysisIsStable) {
  ModuleSpec M = generateModule(ModuleCategory::Hard, GetParam() + 3, 4);
  ModuleModeResult A = analyzeModuleAllModes(M.Source);
  ModuleModeResult B = analyzeModuleAllModes(M.Source);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_TRUE(A.Counts == B.Counts);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QualDeterminism, ::testing::Range(0u, 6u));

} // namespace
