//===- LexerTest.cpp - Lexer unit tests -----------------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace lna;

namespace {

std::vector<Token> lexAll(std::string_view Src, Diagnostics &Diags) {
  Lexer L(Src, Diags);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    if (T.is(TokenKind::Eof))
      break;
    Out.push_back(T);
  }
  return Out;
}

std::vector<TokenKind> kindsOf(std::string_view Src) {
  Diagnostics Diags;
  std::vector<TokenKind> Out;
  for (const Token &T : lexAll(Src, Diags))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, EmptyInputIsEof) {
  Diagnostics Diags;
  Lexer L("", Diags);
  EXPECT_TRUE(L.next().is(TokenKind::Eof));
  EXPECT_TRUE(L.next().is(TokenKind::Eof)); // stays Eof
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kindsOf("let restrict confine in new newarray"),
            (std::vector<TokenKind>{TokenKind::KwLet, TokenKind::KwRestrict,
                                    TokenKind::KwConfine, TokenKind::KwIn,
                                    TokenKind::KwNew, TokenKind::KwNewArray}));
  EXPECT_EQ(kindsOf("if then else while do fun var struct cast"),
            (std::vector<TokenKind>{
                TokenKind::KwIf, TokenKind::KwThen, TokenKind::KwElse,
                TokenKind::KwWhile, TokenKind::KwDo, TokenKind::KwFun,
                TokenKind::KwVar, TokenKind::KwStruct, TokenKind::KwCast}));
  EXPECT_EQ(kindsOf("int lock ptr array"),
            (std::vector<TokenKind>{TokenKind::KwInt, TokenKind::KwLock,
                                    TokenKind::KwPtr, TokenKind::KwArray}));
}

TEST(Lexer, IdentifiersAreNotKeywords) {
  EXPECT_EQ(kindsOf("lets locked restricted _in in2"),
            (std::vector<TokenKind>{TokenKind::Ident, TokenKind::Ident,
                                    TokenKind::Ident, TokenKind::Ident,
                                    TokenKind::Ident}));
}

TEST(Lexer, IntegerLiteralValues) {
  Diagnostics Diags;
  auto Toks = lexAll("0 42 123456", Diags);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, 123456);
}

TEST(Lexer, CompositeOperators) {
  EXPECT_EQ(kindsOf(":= == != -> = : - < >"),
            (std::vector<TokenKind>{TokenKind::Assign, TokenKind::EqEq,
                                    TokenKind::NotEq, TokenKind::Arrow,
                                    TokenKind::EqSign, TokenKind::Colon,
                                    TokenKind::Minus, TokenKind::Less,
                                    TokenKind::Greater}));
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kindsOf("( ) { } [ ] , ; * +"),
            (std::vector<TokenKind>{
                TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,
                TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
                TokenKind::Comma, TokenKind::Semi, TokenKind::Star,
                TokenKind::Plus}));
}

TEST(Lexer, LineCommentsAreSkipped) {
  EXPECT_EQ(kindsOf("a // this is a comment\nb"),
            (std::vector<TokenKind>{TokenKind::Ident, TokenKind::Ident}));
}

TEST(Lexer, CommentAtEndOfInput) {
  EXPECT_TRUE(kindsOf("// only a comment").empty());
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  Diagnostics Diags;
  auto Toks = lexAll("ab cd\n  ef", Diags);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Loc, (SourceLoc{1, 1}));
  EXPECT_EQ(Toks[1].Loc, (SourceLoc{1, 4}));
  EXPECT_EQ(Toks[2].Loc, (SourceLoc{2, 3}));
}

TEST(Lexer, UnexpectedCharacterIsReported) {
  Diagnostics Diags;
  auto Toks = lexAll("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Kind, TokenKind::Error);
}

TEST(Lexer, BangWithoutEqualsIsAnError) {
  Diagnostics Diags;
  lexAll("!x", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, TextViewsMatchSource) {
  Diagnostics Diags;
  auto Toks = lexAll("spin_lock(locks[i])", Diags);
  ASSERT_GE(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "spin_lock");
  EXPECT_EQ(Toks[2].Text, "locks");
}

TEST(Lexer, TokenKindNamesAreStable) {
  EXPECT_STREQ(tokenKindName(TokenKind::KwRestrict), "'restrict'");
  EXPECT_STREQ(tokenKindName(TokenKind::Assign), "':='");
  EXPECT_STREQ(tokenKindName(TokenKind::Eof), "end of input");
}

} // namespace
