//===- SupervisorTest.cpp - process isolation & supervision tests ---------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Covers the process-isolation stack bottom-up: the Subprocess
// primitive (spawn/classify/reap), the module-outcome wire format, the
// hardened checkpoint journal (torn final rows), and the supervisor
// itself -- byte-identical reports vs. the in-process runner, worker
// crash recovery, and poison-module quarantine. The supervised tests
// spawn the real lna-corpus binary (LNA_CORPUS_BIN) in --worker mode.
//
//===----------------------------------------------------------------------===//

#include "corpus/Supervisor.h"
#include "obs/EventJournal.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace lna;

namespace {

std::string readAllFrom(int Fd) {
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::read(Fd, Buf, sizeof(Buf))) > 0)
    Out.append(Buf, static_cast<size_t>(N));
  return Out;
}

/// A unique scratch path under the test binary's working directory.
std::string scratchPath(const std::string &Name) {
  return "supervisor_test_" + Name;
}

std::vector<ModuleSpec> corpusSlice(uint32_t N) {
  std::vector<ModuleSpec> Corpus = generateCorpus();
  if (N < Corpus.size())
    Corpus.resize(N);
  return Corpus;
}

/// Worker command line matching corpusSlice(N): the real corpus binary,
/// the same slice, worker mode.
std::vector<std::string> workerArgv(uint32_t N,
                                    const std::string &ExtraFlag = "") {
  std::vector<std::string> Argv{LNA_CORPUS_BIN,
                                "--limit=" + std::to_string(N)};
  if (!ExtraFlag.empty())
    Argv.push_back(ExtraFlag);
  Argv.push_back("--worker");
  return Argv;
}

//===----------------------------------------------------------------------===//
// Subprocess primitives
//===----------------------------------------------------------------------===//

TEST(SubprocessTest, PipesRoundTripAndCleanExit) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({"/bin/cat"}, Err)) << Err;
  EXPECT_TRUE(P.started());
  EXPECT_GT(P.pid(), 0);
  ASSERT_TRUE(writeAll(P.stdinFd(), "through the pipes\n"));
  P.closeStdin();
  EXPECT_EQ(readAllFrom(P.stdoutFd()), "through the pipes\n");
  ExitStatus St = P.wait();
  EXPECT_EQ(St.K, ExitStatus::Kind::Exited);
  EXPECT_EQ(St.Code, 0);
  EXPECT_EQ(St.describe(), "exit status 0");
}

TEST(SubprocessTest, ExitCodeIsClassified) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({"/bin/sh", "-c", "exit 7"}, Err)) << Err;
  ExitStatus St = P.wait();
  EXPECT_EQ(St.K, ExitStatus::Kind::Exited);
  EXPECT_EQ(St.Code, 7);
  // Repeated reaps keep returning the final status.
  EXPECT_EQ(P.poll().Code, 7);
}

TEST(SubprocessTest, SignalDeathIsClassified) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({"/bin/sh", "-c", "kill -KILL $$"}, Err)) << Err;
  ExitStatus St = P.wait();
  EXPECT_EQ(St.K, ExitStatus::Kind::Signaled);
  EXPECT_EQ(St.Signal, SIGKILL);
  // SIGKILL forensics flag the OOM-killer possibility.
  EXPECT_NE(St.describe().find("signal 9"), std::string::npos);
  EXPECT_NE(St.describe().find("OOM"), std::string::npos);
}

TEST(SubprocessTest, ExecFailureSurfacesAs127) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({"/nonexistent/definitely-not-a-binary"}, Err)) << Err;
  ExitStatus St = P.wait();
  EXPECT_EQ(St.K, ExitStatus::Kind::Exited);
  EXPECT_EQ(St.Code, 127);
}

TEST(SubprocessTest, KillReapsARunningChild) {
  Subprocess P;
  std::string Err;
  ASSERT_TRUE(P.spawn({"/bin/sh", "-c", "sleep 30"}, Err)) << Err;
  EXPECT_TRUE(P.poll().running());
  P.kill(SIGKILL);
  ExitStatus St = P.wait();
  EXPECT_EQ(St.K, ExitStatus::Kind::Signaled);
  EXPECT_EQ(St.Signal, SIGKILL);
}

//===----------------------------------------------------------------------===//
// Module-outcome wire format
//===----------------------------------------------------------------------===//

ModuleOutcome sampleOutcome() {
  ModuleOutcome O;
  O.R.Ok = false;
  O.R.Failure = FailureKind::InternalError;
  O.R.Error = "injected fault at inference";
  O.R.FailedPhase = "inference";
  O.R.Counts = {12, 3, 1};
  O.Retried = true;
  PhaseStats &PS = O.R.Stats.phase("parse");
  PS.Seconds = 0.001953125; // exactly representable
  PS.add("tokens", 421);
  return O;
}

TEST(OutcomeWireTest, RoundTripsEveryField) {
  ModuleOutcome O = sampleOutcome();
  std::string Bytes = serializeModuleOutcome(O, 17);
  size_t Consumed = 0;
  uint32_t Idx = 0;
  ModuleOutcome Back;
  ASSERT_EQ(parseModuleOutcome(Bytes, Consumed, Idx, Back), WireParse::Ok);
  EXPECT_EQ(Consumed, Bytes.size());
  EXPECT_EQ(Idx, 17u);
  EXPECT_EQ(Back.R.Ok, O.R.Ok);
  EXPECT_EQ(Back.R.Failure, O.R.Failure);
  EXPECT_EQ(Back.R.Error, O.R.Error);
  EXPECT_EQ(Back.R.FailedPhase, O.R.FailedPhase);
  EXPECT_EQ(Back.R.Counts.NoConfine, O.R.Counts.NoConfine);
  EXPECT_EQ(Back.R.Counts.ConfineInference, O.R.Counts.ConfineInference);
  EXPECT_EQ(Back.R.Counts.AllStrong, O.R.Counts.AllStrong);
  EXPECT_TRUE(Back.Retried);
  EXPECT_FALSE(Back.Resumed);
  EXPECT_DOUBLE_EQ(Back.R.Stats.phase("parse").Seconds, 0.001953125);
  EXPECT_EQ(Back.R.Stats.counter("parse", "tokens"), 421u);
}

TEST(OutcomeWireTest, IncompletePrefixNeedsMoreAtEveryCut) {
  std::string Bytes = serializeModuleOutcome(sampleOutcome(), 3);
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    size_t Consumed = 0;
    uint32_t Idx = 0;
    ModuleOutcome Back;
    EXPECT_EQ(parseModuleOutcome(std::string_view(Bytes).substr(0, Cut),
                                 Consumed, Idx, Back),
              WireParse::NeedMore)
        << "cut at " << Cut;
  }
}

TEST(OutcomeWireTest, GarbageIsCorruptNotACrash) {
  size_t Consumed = 0;
  uint32_t Idx = 0;
  ModuleOutcome Back;
  EXPECT_EQ(parseModuleOutcome("garbage 9 9 9\nmore", Consumed, Idx, Back),
            WireParse::Corrupt);
  // A valid header whose failure kind does not exist is corrupt too.
  EXPECT_EQ(parseModuleOutcome(
                "outcome 1 0 0 not-a-kind 0 0 0 1 1 1 0 0 0 0\n", Consumed,
                Idx, Back),
            WireParse::Corrupt);
}

TEST(OutcomeWireTest, StatsSerializationRoundTripsExactly) {
  SessionStats S;
  PhaseStats &P1 = S.phase("typing");
  P1.Seconds = 1.0 / 3.0; // not exactly printable in decimal
  P1.add("unifications", 123456789);
  S.phase("inference").Seconds = 4.25e-7;
  SessionStats Back;
  ASSERT_TRUE(Back.deserialize(S.serialize()));
  // Hex-float encoding makes the round trip exact, not just close.
  EXPECT_EQ(Back.renderText(), S.renderText());
  EXPECT_EQ(Back.phase("typing").Seconds, 1.0 / 3.0);
  ASSERT_FALSE(Back.deserialize("stats 1 1\ntruncated"));
  EXPECT_TRUE(Back.empty());
}

//===----------------------------------------------------------------------===//
// Checkpoint journal hardening
//===----------------------------------------------------------------------===//

TEST(JournalTest, TornFinalRowIsSkippedOnResume) {
  std::string Path = scratchPath("torn.journal");
  std::remove(Path.c_str());
  {
    CheckpointJournal J;
    ASSERT_TRUE(J.open(Path));
    ModuleOutcome Ok;
    Ok.R.Ok = true;
    Ok.R.Counts = {5, 1, 0};
    J.append("mod_a", std::string(32, 'a'), Ok);
    J.append("mod_b", std::string(32, 'b'), Ok);
  }
  auto Full = loadCheckpointJournal(Path);
  ASSERT_EQ(Full.size(), 2u);

  // Cut the final row mid-write -- after its last numeric field but
  // before the integrity sentinel. All numeric fields parse, so only
  // the sentinel check can tell the row was torn.
  std::ifstream In(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  size_t End = Bytes.rfind("\tend\n");
  ASSERT_NE(End, std::string::npos);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(End));
  Out.close();

  auto Torn = loadCheckpointJournal(Path);
  ASSERT_EQ(Torn.size(), 1u);
  EXPECT_EQ(Torn.count("mod_a"), 1u);
  EXPECT_EQ(Torn.count("mod_b"), 0u); // torn -> re-analyzed, not trusted
  std::remove(Path.c_str());
}

TEST(JournalTest, TruncatedResumeReanalyzesAndMatches) {
  // A full governed run's report must be byte-identical whether the
  // journal survived intact or lost its tail.
  std::vector<ModuleSpec> Corpus = corpusSlice(8);
  std::string Path = scratchPath("resume.journal");
  std::remove(Path.c_str());

  ExperimentOptions Opts;
  Opts.CheckpointFile = Path;
  std::string FirstReport =
      renderCorpusReport(runCorpusExperiment(Corpus, Opts));

  // Drop the last two journal lines (simulating a kill mid-write), then
  // resume over the same slice.
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  In.close();
  ASSERT_GE(Lines.size(), 3u);
  std::ofstream Out(Path, std::ios::trunc);
  for (size_t I = 0; I + 2 < Lines.size(); ++I)
    Out << Lines[I] << '\n';
  // ... and a torn fragment of what would have been the next row.
  Out << "drv_torn\t" << std::string(32, 'c') << "\tok\t0\t3";
  Out.close();

  CorpusSummary Resumed = runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(renderCorpusReport(Resumed), FirstReport);
  EXPECT_EQ(Resumed.ResumedModules, Lines.size() - 2);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Supervised execution
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, ReportMatchesInProcessRunner) {
  const uint32_t N = 12;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  ExperimentOptions Opts;
  std::string InProcess = renderCorpusReport(runCorpusExperiment(Corpus, Opts));

  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.WorkerArgv = workerArgv(N);
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(renderCorpusReport(Res.Summary), InProcess);
  EXPECT_EQ(corpusReportJSON(Res.Summary, /*IncludeTimings=*/false),
            corpusReportJSON(runCorpusExperiment(Corpus, Opts),
                             /*IncludeTimings=*/false));
  EXPECT_EQ(Res.Stats.WorkerCrashes, 0u);
  EXPECT_EQ(Res.Stats.QuarantinedModules, 0u);
}

TEST(SupervisorTest, WorkerKilledMidRunIsRestartedAndRecovers) {
  // Large enough that work remains after the ~10ms restart backoff, so
  // a replacement worker is actually spawned (a tiny slice can drain
  // through the surviving worker before the backoff elapses).
  const uint32_t N = 120;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  ExperimentOptions Opts;
  std::string InProcess = renderCorpusReport(runCorpusExperiment(Corpus, Opts));

  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.WorkerArgv = workerArgv(N);
  // Assassinate the first worker the moment it is born: its dispatched
  // module (if any) must be re-queued, a replacement spawned, and the
  // run must still produce the exact in-process report.
  bool Killed = false;
  Sup.OnWorkerSpawn = [&Killed](int Pid) {
    if (!Killed) {
      Killed = true;
      ::kill(Pid, SIGKILL);
    }
  };
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_GE(Res.Stats.WorkerCrashes, 1u);
  EXPECT_GE(Res.Stats.WorkerRestarts, 1u);
  EXPECT_EQ(Res.Stats.QuarantinedModules, 0u);
  EXPECT_EQ(renderCorpusReport(Res.Summary), InProcess);
}

TEST(SupervisorTest, PoisonModuleIsQuarantinedWithForensics) {
  // Every phase boundary kills the worker: every module is a poison
  // module. The run must still complete, with each module quarantined
  // as a Crashed row after exactly MaxModuleCrashes attempts.
  const uint32_t N = 3;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  ExperimentOptions Opts;
  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.MaxModuleCrashes = 2;
  Sup.WorkerArgv = workerArgv(N, "--inject-faults=seed=1,kill=1000000");
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.Stats.QuarantinedModules, N);
  EXPECT_EQ(Res.Stats.WorkerCrashes, N * Sup.MaxModuleCrashes);
  EXPECT_EQ(Res.Summary.FailedModules, N);
  EXPECT_EQ(Res.Summary.FailuresByKind[static_cast<size_t>(
                FailureKind::Crashed)],
            N);
  for (const ModuleResult &M : Res.Summary.Modules) {
    EXPECT_FALSE(M.Ok);
    EXPECT_EQ(M.Failure, FailureKind::Crashed);
    // Forensics: how the worker died and which crash sealed the verdict.
    EXPECT_NE(M.Error.find("signal 9"), std::string::npos) << M.Error;
    EXPECT_NE(M.Error.find("quarantined after 2/2"), std::string::npos)
        << M.Error;
  }
}

TEST(SupervisorTest, InjectedKillsRecoverToIdenticalReport) {
  // Moderate kill probability: some worker deaths, but the per-module
  // crash budget is never exhausted, so the report must be byte-equal
  // to the unfaulted in-process run (crash-retry determinism).
  const uint32_t N = 20;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  ExperimentOptions Opts;
  std::string InProcess = renderCorpusReport(runCorpusExperiment(Corpus, Opts));

  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.MaxModuleCrashes = 6;
  Sup.WorkerArgv = workerArgv(N, "--inject-faults=seed=7,kill=20000");
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_EQ(Res.Stats.QuarantinedModules, 0u);
  EXPECT_EQ(renderCorpusReport(Res.Summary), InProcess);
}

TEST(SupervisorTest, CheckpointResumeSkipsFinishedModules) {
  const uint32_t N = 10;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  std::string Path = scratchPath("supervised.journal");
  std::remove(Path.c_str());

  ExperimentOptions Opts;
  Opts.CheckpointFile = Path;
  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.WorkerArgv = workerArgv(N);

  SupervisedResult First = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.Summary.ResumedModules, 0u);

  // Second run resumes everything: no workers have any module to run,
  // and the rendered report is identical (resume is invisible).
  SupervisedResult Second = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(Second.Summary.ResumedModules, N);
  EXPECT_EQ(renderCorpusReport(Second.Summary),
            renderCorpusReport(First.Summary));
  std::remove(Path.c_str());
}

TEST(SupervisorTest, UnrunnableWorkerBinaryIsAFatalConfigError) {
  std::vector<ModuleSpec> Corpus = corpusSlice(2);
  ExperimentOptions Opts;
  SupervisorOptions Sup;
  Sup.Workers = 1;
  Sup.WorkerArgv = {"/nonexistent/lna-corpus", "--worker"};
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("failed to start"), std::string::npos)
      << Res.Error;
}

//===----------------------------------------------------------------------===//
// Fleet observability: event journal, flight recovery, fleet trace
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> readLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  return Lines;
}

size_t countEvents(const std::vector<std::string> &Lines,
                   const std::string &Type) {
  std::string Needle = "\"event\":\"" + Type + "\"";
  size_t N = 0;
  for (const std::string &L : Lines)
    if (L.find(Needle) != std::string::npos)
      ++N;
  return N;
}

} // namespace

TEST(SupervisorObs, ChaosJournalCoversEveryDeathRestartAndQuarantine) {
  // Seeded chaos: the journal must account for exactly the deaths,
  // restarts, and quarantines the supervisor itself counted -- and its
  // timestamps must be totally ordered.
  const uint32_t N = 12;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  std::string JournalPath = scratchPath("events.jsonl");

  EventJournal Events;
  ASSERT_TRUE(Events.open(JournalPath));
  ExperimentOptions Opts;
  Opts.Events = &Events;
  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.MaxModuleCrashes = 1;
  Sup.WorkerArgv = workerArgv(N, "--inject-faults=seed=7,kill=300000");
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  Events.close();
  ASSERT_TRUE(Res.Ok) << Res.Error;
  ASSERT_GE(Res.Stats.WorkerCrashes, 1u);

  std::vector<std::string> Lines = readLines(JournalPath);
  ASSERT_FALSE(Lines.empty());
  uint64_t PrevTs = 0;
  for (const std::string &L : Lines) {
    ASSERT_EQ(L.rfind("{\"ts_us\":", 0), 0u) << L;
    ASSERT_EQ(L.back(), '}') << L;
    uint64_t Ts = 0;
    ASSERT_EQ(std::sscanf(L.c_str(), "{\"ts_us\":%" SCNu64, &Ts), 1) << L;
    EXPECT_GE(Ts, PrevTs);
    PrevTs = Ts;
  }
  EXPECT_EQ(countEvents(Lines, "worker-death"), Res.Stats.WorkerCrashes);
  EXPECT_EQ(countEvents(Lines, "module-quarantine"),
            Res.Stats.QuarantinedModules);
  // Every spawn is either one of the initial workers or a counted
  // restart; a restart carries "restart":true.
  size_t Spawns = countEvents(Lines, "worker-spawn");
  EXPECT_LE(Spawns, Sup.Workers + Res.Stats.WorkerRestarts);
  // Every module is accounted for exactly once: completed or
  // quarantined.
  EXPECT_EQ(countEvents(Lines, "module-complete") +
                countEvents(Lines, "module-quarantine"),
            N);
  std::remove(JournalPath.c_str());
}

TEST(SupervisorObs, QuarantineForensicsContainRecoveredFlightSpans) {
  // A worker SIGKILLed mid-module leaves its black box behind; the
  // quarantine row must surface the recovered span tail. kill=300000
  // with this seed kills several modules *after* at least one phase
  // span closed (a kill at the very first fault site leaves an empty
  // recording, which is correctly omitted).
  const uint32_t N = 12;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  std::string FlightDir = scratchPath("flightdir");
  std::filesystem::create_directories(FlightDir);

  ExperimentOptions Opts;
  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.MaxModuleCrashes = 1;
  Sup.FlightDir = FlightDir;
  Sup.WorkerArgv = workerArgv(N, "--inject-faults=seed=7,kill=300000");
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  ASSERT_GE(Res.Stats.QuarantinedModules, 1u);

  size_t WithFlight = 0;
  for (const ModuleResult &M : Res.Summary.Modules) {
    if (M.Ok || M.Failure != FailureKind::Crashed)
      continue;
    // Forensics ordering: the recovered tail extends the quarantine
    // verdict, never replaces it.
    EXPECT_NE(M.Error.find("quarantined after"), std::string::npos)
        << M.Error;
    if (M.Error.find("flight recorder (") != std::string::npos) {
      ++WithFlight;
      EXPECT_NE(M.Error.find("recovered span"), std::string::npos) << M.Error;
      EXPECT_NE(M.Error.find("us/"), std::string::npos) << M.Error;
    }
  }
  EXPECT_GE(WithFlight, 1u);
  std::filesystem::remove_all(FlightDir);
}

TEST(SupervisorObs, FleetTraceMergesWorkerLanesAndReportIsUnchanged) {
  const uint32_t N = 8;
  std::vector<ModuleSpec> Corpus = corpusSlice(N);
  ExperimentOptions Plain;
  std::string Baseline =
      renderCorpusReport(runCorpusExperiment(Corpus, Plain));

  std::string TraceDir = scratchPath("fleettrace");
  std::filesystem::create_directories(TraceDir);
  ExperimentOptions Opts;
  Opts.TraceDir = TraceDir;
  SupervisorOptions Sup;
  Sup.Workers = 2;
  Sup.WorkerArgv = workerArgv(N, "--trace-dir=" + TraceDir);
  Sup.FleetTracePath = TraceDir + "/fleet.trace.json";
  SupervisedResult Res = runSupervisedExperiment(Corpus, Opts, Sup);
  ASSERT_TRUE(Res.Ok) << Res.Error;
  EXPECT_FALSE(Res.FleetTraceFailed);
  // Observability never perturbs the deterministic report surface.
  EXPECT_EQ(renderCorpusReport(Res.Summary), Baseline);

  std::ifstream In(Sup.FleetTracePath);
  ASSERT_TRUE(In.good());
  std::string Json((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  // Supervisor and both worker lanes are named...
  EXPECT_NE(Json.find("\"name\":\"supervisor\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"worker 1\""), std::string::npos);
  // ...and per-module phase spans were merged out of the module traces
  // (pid >= 1 lanes carry cat "lna" spans).
  EXPECT_NE(Json.find("\"cat\":\"lna\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"aggregate\""), std::string::npos);
  std::filesystem::remove_all(TraceDir);
}

} // namespace
