//===- ObsTest.cpp - Observability layer tests ----------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Covers src/obs: span tracing (ring buffer, Chrome JSON export, scope
// routing, the zero-cost disabled path), metrics (histogram bucketing,
// merge associativity/commutativity, registry merge determinism), the
// provenance/explain layer end to end through a failing restrict and a
// failing confine, corpus metrics determinism across job counts, and the
// JSON escaping the emitters share.
//
//===----------------------------------------------------------------------===//

#include "corpus/Experiment.h"
#include "core/Session.h"
#include "obs/EventJournal.h"
#include "obs/FleetTrace.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "obs/Provenance.h"
#include "obs/Trace.h"
#include "support/Stats.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <set>
#include <sstream>

using namespace lna;

//===----------------------------------------------------------------------===//
// Allocation counting (for the tracer-disabled zero-allocation check).
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocs{0};
} // namespace

// GCC's inliner pairs the malloc in the replaced operator new with the
// free in operator delete and misreports a mismatch; the replacement is
// well-formed ([new.delete.single]).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *operator new(std::size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::bucketUpperBound(64), UINT64_MAX);
}

TEST(Histogram, EmptyAndBasicStats) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  H.record(3);
  H.record(5);
  H.record(100);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 108u);
  EXPECT_EQ(H.min(), 3u);
  EXPECT_EQ(H.max(), 100u);
  // p50 lands in the bucket of 5 ([4,8) -> upper bound 7), p100 clamps
  // to the observed max.
  EXPECT_EQ(H.quantile(0.5), 7u);
  EXPECT_EQ(H.quantile(1.0), 100u);
  // Quantiles never report below the observed minimum.
  EXPECT_GE(H.quantile(0.0), 3u);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // Three histograms with pseudo-random (LCG) contents.
  Histogram A, B, C;
  uint64_t X = 12345;
  auto Next = [&X] {
    X = X * 6364136223846793005ULL + 1442695040888963407ULL;
    return X >> 33;
  };
  for (int I = 0; I < 200; ++I)
    A.record(Next() % 1000);
  for (int I = 0; I < 150; ++I)
    B.record(Next() % 50);
  for (int I = 0; I < 75; ++I)
    C.record(Next());

  Histogram AB_C = A;
  AB_C.merge(B);
  AB_C.merge(C);
  Histogram BC = B;
  BC.merge(C);
  Histogram A_BC = A;
  A_BC.merge(BC);
  EXPECT_TRUE(AB_C == A_BC);

  Histogram BA = B;
  BA.merge(A);
  Histogram AB = A;
  AB.merge(B);
  EXPECT_TRUE(AB == BA);
  EXPECT_EQ(AB.quantile(0.5), BA.quantile(0.5));
  EXPECT_EQ(AB.quantile(0.95), BA.quantile(0.95));
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, CountersAndHistogramsByName) {
  MetricsRegistry R;
  EXPECT_TRUE(R.empty());
  R.addCounter("a", 2);
  R.addCounter("a", 3);
  R.addCounter("b", 1);
  R.recordValue("h", 7);
  R.recordValue("h", 9);
  EXPECT_FALSE(R.empty());
  EXPECT_EQ(R.counter("a"), 5u);
  EXPECT_EQ(R.counter("b"), 1u);
  EXPECT_EQ(R.counter("missing"), 0u);
  ASSERT_NE(R.findHistogram("h"), nullptr);
  EXPECT_EQ(R.findHistogram("h")->count(), 2u);
  EXPECT_EQ(R.findHistogram("missing"), nullptr);
}

TEST(MetricsRegistry, MergeSumsAndAppendsInOrder) {
  MetricsRegistry A, B;
  A.addCounter("x", 1);
  A.recordValue("h", 2);
  B.addCounter("y", 10);
  B.addCounter("x", 4);
  B.recordValue("h", 8);
  A.merge(B);
  EXPECT_EQ(A.counter("x"), 5u);
  EXPECT_EQ(A.counter("y"), 10u);
  ASSERT_EQ(A.counters().size(), 2u);
  // First-seen order: x (from A), then y (appended from B).
  EXPECT_EQ(A.counters()[0].first, "x");
  EXPECT_EQ(A.counters()[1].first, "y");
  EXPECT_EQ(A.findHistogram("h")->count(), 2u);
  EXPECT_EQ(A.findHistogram("h")->sum(), 10u);
}

TEST(MetricsRegistry, ScopeRoutesRecordingAndRestores) {
  EXPECT_EQ(currentMetrics(), nullptr);
  MetricsRegistry Outer, Inner;
  {
    MetricsScope SO(Outer);
    obsCounter("c");
    {
      MetricsScope SI(Inner);
      obsCounter("c");
      obsHistogram("h", 42);
    }
    obsCounter("c");
  }
  EXPECT_EQ(currentMetrics(), nullptr);
  EXPECT_EQ(Outer.counter("c"), 2u);
  EXPECT_EQ(Inner.counter("c"), 1u);
  EXPECT_EQ(Outer.findHistogram("h"), nullptr);
  ASSERT_NE(Inner.findHistogram("h"), nullptr);
  EXPECT_EQ(Inner.findHistogram("h")->max(), 42u);
}

TEST(MetricsRegistry, RenderJSONEscapesNames) {
  MetricsRegistry R;
  R.addCounter("we\"ird\\name", 1);
  std::string Json = R.renderJSON();
  EXPECT_NE(Json.find("we\\\"ird\\\\name"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Disabled-path cost: no sink, no registry -> no allocation.
//===----------------------------------------------------------------------===//

TEST(ObsDisabled, NoSinkMeansNoAllocation) {
  ASSERT_EQ(currentTraceSink(), nullptr);
  ASSERT_EQ(currentMetrics(), nullptr);
  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  for (int I = 0; I < 1000; ++I) {
    Span Sp("noop");
    obsCounter("noop");
    obsHistogram("noop", static_cast<uint64_t>(I));
  }
  EXPECT_EQ(GAllocs.load(std::memory_order_relaxed), Before);
}

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

TEST(TraceSink, RecordsSpansThroughScope) {
  TraceSink Sink;
  {
    TraceScope Scope(Sink);
    Span Outer("outer");
    { Span InnerSpan("inner"); }
  }
  EXPECT_EQ(Sink.numTotal(), 2u);
  EXPECT_EQ(Sink.numDropped(), 0u);
  std::string Json = Sink.renderChromeJSON();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  // The inner span closed first and nests one level deeper.
  EXPECT_NE(Json.find("\"depth\":1"), std::string::npos);
}

TEST(TraceSink, RingOverwritesOldestAndCountsDropped) {
  TraceSink Sink(4);
  {
    TraceScope Scope(Sink);
    for (int I = 0; I < 6; ++I)
      Span Sp(I < 2 ? "old" : "new");
  }
  EXPECT_EQ(Sink.numTotal(), 6u);
  EXPECT_EQ(Sink.numRecorded(), 4u);
  EXPECT_EQ(Sink.numDropped(), 2u);
  std::string Json = Sink.renderChromeJSON();
  EXPECT_EQ(Json.find("\"old\""), std::string::npos);
  EXPECT_NE(Json.find("\"new\""), std::string::npos);
  EXPECT_NE(Json.find("\"droppedEvents\":2"), std::string::npos);
}

TEST(TraceSink, ScopeRestoresEnclosingSink) {
  ASSERT_EQ(currentTraceSink(), nullptr);
  TraceSink A, B;
  {
    TraceScope SA(A);
    EXPECT_EQ(currentTraceSink(), &A);
    {
      TraceScope SB(B);
      EXPECT_EQ(currentTraceSink(), &B);
    }
    EXPECT_EQ(currentTraceSink(), &A);
  }
  EXPECT_EQ(currentTraceSink(), nullptr);
}

//===----------------------------------------------------------------------===//
// Session integration: phases and solver internals produce spans and
// metrics.
//===----------------------------------------------------------------------===//

const char *DemoProgram = R"(
fun f(q : ptr int) : int {
  restrict p = q in {
    *p;
    *q
  }
}
)";

TEST(ObsSession, PhasesAndSolverSpansAppearInTrace) {
  TraceSink Sink;
  {
    TraceScope Scope(Sink);
    AnalysisSession S(PipelineOptions{});
    ASSERT_TRUE(S.run(DemoProgram));
  }
  std::string Json = Sink.renderChromeJSON();
  for (const char *Name : {"parse", "confine-placement", "typing",
                           "effect-constraints", "inference", "unify",
                           "solve", "propagate"})
    EXPECT_NE(Json.find(std::string("\"") + Name + "\""), std::string::npos)
        << "missing span " << Name;
}

TEST(ObsSession, SolverMetricsAppearInRegistry) {
  MetricsRegistry R;
  {
    MetricsScope Scope(R);
    AnalysisSession S(PipelineOptions{});
    ASSERT_TRUE(S.run(DemoProgram));
  }
  for (const char *Name :
       {"unify-chain-depth", "constraint-out-degree", "effect-set-size"}) {
    const Histogram *H = R.findHistogram(Name);
    ASSERT_NE(H, nullptr) << "missing histogram " << Name;
    EXPECT_GT(H->count(), 0u) << Name;
  }
}

TEST(ObsSession, CheckSatVisitsRecordedPerQuery) {
  MetricsRegistry R;
  {
    MetricsScope Scope(R);
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    AnalysisSession S(Opts);
    ASSERT_TRUE(S.run(DemoProgram));
  }
  const Histogram *H = R.findHistogram("checksat-visits");
  ASSERT_NE(H, nullptr);
  EXPECT_GT(H->count(), 0u);
}

//===----------------------------------------------------------------------===//
// Provenance / explain
//===----------------------------------------------------------------------===//

TEST(Explain, FailingRestrictYieldsConstraintPath) {
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  Opts.TrackProvenance = true;
  AnalysisSession S(Opts);
  ASSERT_TRUE(S.run(DemoProgram));
  const RestrictCheckResult &Checks = S.result().Checks;
  ASSERT_FALSE(Checks.ok());
  const RestrictViolation &V = Checks.Violations.front();
  EXPECT_EQ(V.K, RestrictViolation::Kind::AccessedInScope);
  ASSERT_NE(V.ExplainRho, InvalidLocId);
  ASSERT_NE(V.ExplainTarget, InvalidEffVar);
  std::vector<ExplainStep> Path =
      S.result().State->CS.explainReachAnyKind(V.ExplainRho, V.ExplainTarget);
  ASSERT_GE(Path.size(), 2u);
  // The path ends at the access that seeded the conflicting location.
  unsigned LocatedSteps = 0;
  for (const ExplainStep &Step : Path)
    if (Step.Loc.isValid())
      ++LocatedSteps;
  EXPECT_GE(LocatedSteps, 2u);
  EXPECT_TRUE(Path.back().Loc.isValid());
  std::string Rendered = renderConstraintPath(Path);
  EXPECT_NE(Rendered.find("1. "), std::string::npos);
  EXPECT_NE(Rendered.find(" at "), std::string::npos);
}

TEST(Explain, FailingConfineYieldsConstraintPath) {
  const char *Confine = R"(
var locks : array lock;
fun f(i : int, j : int) : int {
  confine locks[i] in {
    spin_lock(locks[i]);
    spin_unlock(locks[j]);
    0
  }
}
)";
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  Opts.TrackProvenance = true;
  AnalysisSession S(Opts);
  ASSERT_TRUE(S.run(Confine));
  const RestrictCheckResult &Checks = S.result().Checks;
  ASSERT_FALSE(Checks.ok());
  bool Found = false;
  for (const RestrictViolation &V : Checks.Violations) {
    if (V.K != RestrictViolation::Kind::AccessedInScope)
      continue;
    Found = true;
    ASSERT_NE(V.ExplainRho, InvalidLocId);
    std::vector<ExplainStep> Path = S.result().State->CS.explainReachAnyKind(
        V.ExplainRho, V.ExplainTarget);
    EXPECT_GE(Path.size(), 2u);
    EXPECT_TRUE(Path.back().Loc.isValid());
  }
  EXPECT_TRUE(Found);
}

TEST(Explain, ProvenanceOffStillReplaysReachability) {
  // Without TrackProvenance the fields still identify the query; the
  // path simply carries no origin notes/locations beyond defaults. The
  // reachability replay itself must still terminate and agree with
  // reaches().
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  AnalysisSession S(Opts);
  ASSERT_TRUE(S.run(DemoProgram));
  const RestrictCheckResult &Checks = S.result().Checks;
  ASSERT_FALSE(Checks.ok());
  const RestrictViolation &V = Checks.Violations.front();
  std::vector<ExplainStep> Path =
      S.result().State->CS.explainReachAnyKind(V.ExplainRho, V.ExplainTarget);
  EXPECT_FALSE(Path.empty());
}

TEST(Explain, RenderConstraintPathFormatsSteps) {
  std::vector<ExplainStep> Path;
  Path.push_back({SourceLoc{3, 7}, "effect of statement"});
  Path.push_back({SourceLoc{}, "synthetic step"});
  std::string Out = renderConstraintPath(Path, ">>");
  EXPECT_NE(Out.find(">>1. effect of statement at 3:7"), std::string::npos);
  EXPECT_NE(Out.find(">>2. synthetic step"), std::string::npos);
  // Invalid locations render without a location suffix.
  EXPECT_EQ(Out.find("synthetic step at"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Corpus determinism: metrics identical across job counts.
//===----------------------------------------------------------------------===//

TEST(ObsCorpus, MetricsIdenticalAcrossJobCounts) {
  std::vector<ModuleSpec> Corpus = generateCorpus();
  Corpus.resize(24);
  ExperimentOptions O1;
  O1.Jobs = 1;
  O1.CollectMetrics = true;
  ExperimentOptions O4 = O1;
  O4.Jobs = 4;
  CorpusSummary S1 = runCorpusExperiment(Corpus, O1);
  CorpusSummary S4 = runCorpusExperiment(Corpus, O4);
  EXPECT_FALSE(S1.Metrics.empty());
  EXPECT_EQ(S1.Metrics.renderJSON(), S4.Metrics.renderJSON());
  EXPECT_EQ(S1.Metrics.renderText(), S4.Metrics.renderText());
}

namespace {

/// Fails at the first effect-constraints phase boundary when armed:
/// deep enough into the pipeline that the aborted attempt has already
/// recorded typing metrics (unify-chain-depth) and parse/typing spans --
/// exactly the observability state the retry must discard.
class FailFirstAttempt final : public FaultHook {
public:
  explicit FailFirstAttempt(bool Fire) : Fire(Fire) {}
  void at(const char *Site) override {
    if (Fire && std::string_view(Site) == "effect-constraints")
      throw AnalysisAbort(FailureKind::InternalError,
                          "synthetic first-attempt fault");
  }

private:
  bool Fire;
};

/// Options whose fault hook fires on exactly the first attempt of every
/// module in \p Corpus: every module retries once and recovers.
ExperimentOptions failFirstOptions(const std::vector<ModuleSpec> &Corpus) {
  ExperimentOptions Opts;
  Opts.FaultSeed = 13;
  std::set<uint64_t> FirstAttemptSeeds;
  for (const ModuleSpec &M : Corpus)
    FirstAttemptSeeds.insert(moduleFaultSeed(Opts.FaultSeed, M.Name, 0));
  Opts.Faults = [FirstAttemptSeeds](uint64_t Seed) {
    return std::make_unique<FailFirstAttempt>(FirstAttemptSeeds.count(Seed) !=
                                              0);
  };
  return Opts;
}

/// The number of times a span named \p Name occurs in a Chrome
/// trace-event JSON string.
size_t countSpans(const std::string &Json, const std::string &Name) {
  std::string Needle = "{\"name\":\"" + Name + "\"";
  size_t Count = 0;
  for (size_t Pos = Json.find(Needle); Pos != std::string::npos;
       Pos = Json.find(Needle, Pos + 1))
    ++Count;
  return Count;
}

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST(ObsCorpus, RetriedModuleMetricsMatchACleanRun) {
  // Regression: the aborted first attempt's registry deltas were merged
  // into the kept attempt's, double-counting typing metrics for every
  // retried module. Whether the retry fired must be invisible in the
  // merged metrics.
  std::vector<ModuleSpec> Corpus = generateCorpus();
  Corpus.resize(6);
  ExperimentOptions Clean;
  Clean.CollectMetrics = true;
  CorpusSummary Base = runCorpusExperiment(Corpus, Clean);
  ExperimentOptions Faulted = failFirstOptions(Corpus);
  Faulted.CollectMetrics = true;
  CorpusSummary Retried = runCorpusExperiment(Corpus, Faulted);
  ASSERT_EQ(Retried.RetriedModules, 6u);
  ASSERT_EQ(Retried.FailedModules, 0u);
  ASSERT_FALSE(Base.Metrics.empty());
  EXPECT_EQ(Base.Metrics.renderJSON(), Retried.Metrics.renderJSON());
  EXPECT_EQ(Base.Metrics.renderText(), Retried.Metrics.renderText());
}

TEST(ObsCorpus, RetriedModuleTraceShowsOnlyTheKeptAttempt) {
  // Regression: a retried module's trace file used to contain the
  // aborted attempt's spans followed by the kept attempt's. The aborted
  // pipeline produced no outcome, so its spans must be discarded.
  std::vector<ModuleSpec> Corpus = generateCorpus();
  Corpus.resize(1);
  std::string Dir = testing::TempDir() + "lna_retry_trace";
  std::filesystem::create_directories(Dir);
  std::string TraceFile = Dir + "/" + Corpus[0].Name + ".trace.json";

  ExperimentOptions Clean;
  Clean.TraceDir = Dir;
  CorpusSummary Base = runCorpusExperiment(Corpus, Clean);
  ASSERT_EQ(Base.TraceWriteFailures, 0u);
  std::string CleanTrace = slurpFile(TraceFile);

  ExperimentOptions Faulted = failFirstOptions(Corpus);
  Faulted.TraceDir = Dir;
  CorpusSummary Retried = runCorpusExperiment(Corpus, Faulted);
  ASSERT_EQ(Retried.RetriedModules, 1u);
  ASSERT_EQ(Retried.FailedModules, 0u);
  std::string RetriedTrace = slurpFile(TraceFile);

  ASSERT_GT(countSpans(CleanTrace, "parse"), 0u);
  EXPECT_EQ(countSpans(RetriedTrace, "parse"),
            countSpans(CleanTrace, "parse"));
  EXPECT_EQ(countSpans(RetriedTrace, "typing"),
            countSpans(CleanTrace, "typing"));
  EXPECT_EQ(countSpans(RetriedTrace, "effect-constraints"),
            countSpans(CleanTrace, "effect-constraints"));
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// JSON escaping shared by the emitters (satellite: SessionStats dumps).
//===----------------------------------------------------------------------===//

TEST(JsonEscape, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonEscape, SessionStatsDumpEscapesNames) {
  SessionStats Stats;
  Stats.phase("odd\"phase").add("odd\\counter", 1);
  std::string Json = Stats.renderJSON();
  EXPECT_NE(Json.find("odd\\\"phase"), std::string::npos);
  EXPECT_NE(Json.find("odd\\\\counter"), std::string::npos);
  EXPECT_EQ(Json.find("odd\"phase"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Incremental span drain (the flight recorder's read primitive).
//===----------------------------------------------------------------------===//

TEST(TraceSpansSince, DrainsIncrementallyAndSkipsOverwritten) {
  TraceSink Sink(4);
  Sink.record("a", 10, 1, 0);
  Sink.record("b", 20, 2, 1);
  Sink.record("c", 30, 3, 0);
  std::vector<SpanRecord> Out;
  uint64_t Cursor = Sink.spansSince(0, Out);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Cursor, 3u);
  EXPECT_STREQ(Out[0].Name, "a");
  EXPECT_STREQ(Out[2].Name, "c");

  // Nothing new: no growth, cursor unchanged.
  Out.clear();
  EXPECT_EQ(Sink.spansSince(Cursor, Out), 3u);
  EXPECT_TRUE(Out.empty());

  // Overflow the 4-slot ring: the drain resumes at the oldest span the
  // ring still holds, never re-reading or fabricating overwritten ones.
  for (int I = 0; I < 6; ++I)
    Sink.record("x", 100 + I, 1, 0);
  Out.clear();
  EXPECT_EQ(Sink.spansSince(Cursor, Out), 9u);
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out.front().Start, 102u);
  EXPECT_EQ(Out.back().Start, 105u);
}

//===----------------------------------------------------------------------===//
// Flight recorder: black-box round trip and torn-tail recovery.
//===----------------------------------------------------------------------===//

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + Name;
}

} // namespace

TEST(FlightRecorder, RoundTripRecoversFlushedSpans) {
  std::string Path = tempPath("lna_flight_roundtrip.blackbox");
  FlightRecorder Rec;
  ASSERT_TRUE(Rec.open(Path));
  Rec.beginModule("mod_alpha");

  TraceSink Sink(64);
  Sink.record("parse", 5, 10, 0);
  Sink.record("typing", 20, 30, 0);
  Rec.flush(Sink);
  Sink.record("solve", 60, 7, 1);
  Rec.flush(Sink);
  Rec.close();

  FlightRecording R = loadFlightRecording(Path);
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(R.Module, "mod_alpha");
  ASSERT_EQ(R.Spans.size(), 3u);
  EXPECT_EQ(R.Spans[0].Name, "parse");
  EXPECT_EQ(R.Spans[0].Start, 5u);
  EXPECT_EQ(R.Spans[0].Dur, 10u);
  EXPECT_EQ(R.Spans[2].Name, "solve");
  EXPECT_EQ(R.Spans[2].Depth, 1u);
  std::filesystem::remove(Path);
}

TEST(FlightRecorder, TornTailKeepsEveryCompleteFrame) {
  std::string Path = tempPath("lna_flight_torn.blackbox");
  FlightRecorder Rec;
  ASSERT_TRUE(Rec.open(Path));
  Rec.beginModule("mod_torn");
  TraceSink Sink(64);
  Sink.record("first", 1, 2, 0);
  Rec.flush(Sink); // frame 1: complete
  Sink.record("second", 10, 20, 0);
  Rec.flush(Sink); // frame 2: about to be torn
  Rec.close();

  // A SIGKILL mid-flush leaves a prefix of the last frame in the
  // mapping: clobber the second frame one byte into its payload, as an
  // interrupted in-place format would (the header is 15 bytes,
  // "F ccccc llllll\n").
  std::string Bytes = slurpFile(Path);
  size_t Frame1 = Bytes.find("F 00001 ");
  ASSERT_NE(Frame1, std::string::npos);
  size_t Frame2 = Bytes.find("F 00001 ", Frame1 + 1);
  ASSERT_NE(Frame2, std::string::npos);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::in);
    Out.seekp(static_cast<std::streamoff>(Frame2 + 16));
    Out.put('\0');
  }

  FlightRecording R = loadFlightRecording(Path);
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(R.Module, "mod_torn");
  ASSERT_EQ(R.Spans.size(), 1u);
  EXPECT_EQ(R.Spans[0].Name, "first");
  std::filesystem::remove(Path);
}

TEST(FlightRecorder, BeginModuleResetsTheRecording) {
  // The black box always describes the module in flight: a new
  // beginModule must discard the previous module's frames wholesale.
  std::string Path = tempPath("lna_flight_reset.blackbox");
  FlightRecorder Rec;
  ASSERT_TRUE(Rec.open(Path));
  TraceSink S1(64);
  Rec.beginModule("mod_old");
  S1.record("stale", 1, 1, 0);
  Rec.flush(S1);

  TraceSink S2(64);
  Rec.beginModule("mod_new");
  S2.record("fresh", 2, 3, 0);
  Rec.flush(S2);
  Rec.close();

  FlightRecording R = loadFlightRecording(Path);
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(R.Module, "mod_new");
  ASSERT_EQ(R.Spans.size(), 1u);
  EXPECT_EQ(R.Spans[0].Name, "fresh");
  std::filesystem::remove(Path);
}

TEST(FlightRecorder, MissingOrGarbageFileIsInvalid) {
  EXPECT_FALSE(loadFlightRecording(tempPath("lna_flight_nope")).Valid);
  std::string Path = tempPath("lna_flight_garbage.blackbox");
  {
    std::ofstream Out(Path);
    Out << "not a black box at all\n";
  }
  EXPECT_FALSE(loadFlightRecording(Path).Valid);
  std::filesystem::remove(Path);
}

TEST(FlightRecorder, SummarizeTailShowsMostRecentSpans) {
  FlightRecording R;
  R.Valid = true;
  R.Module = "m";
  for (int I = 0; I < 8; ++I) {
    FlightRecording::Span S;
    S.Name = "s";
    S.Name += std::to_string(I);
    S.Start = static_cast<uint64_t>(I * 10);
    S.Dur = static_cast<uint64_t>(I);
    R.Spans.push_back(std::move(S));
  }
  std::string Tail = summarizeFlightTail(R, 3);
  // Only the last three spans, oldest of them first.
  EXPECT_EQ(Tail.find("s4"), std::string::npos);
  EXPECT_NE(Tail.find("s5 +50us/5us"), std::string::npos);
  EXPECT_NE(Tail.find("s7 +70us/7us"), std::string::npos);
  EXPECT_TRUE(summarizeFlightTail(FlightRecording{}, 3).empty());
}

//===----------------------------------------------------------------------===//
// Event journal: JSONL shape, ordering, escaping, no-op when closed.
//===----------------------------------------------------------------------===//

TEST(EventJournal, LinesAreWellFormedAndOrdered) {
  std::string Path = tempPath("lna_events.jsonl");
  {
    EventJournal J;
    ASSERT_TRUE(J.open(Path));
    J.event("run-start").num("modules", 3).flag("chaos", true);
    J.event("worker-death")
        .num("worker", 2)
        .str("status", "signal 9 \"oom\"")
        .flag("timed_out", false);
    J.event("run-end").num("exit", 0);
  }
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    Lines.push_back(L);
  ASSERT_EQ(Lines.size(), 3u);
  uint64_t PrevTs = 0;
  for (const std::string &L : Lines) {
    // Every line is one object with the ts_us/event envelope first.
    ASSERT_EQ(L.rfind("{\"ts_us\":", 0), 0u) << L;
    EXPECT_EQ(L.back(), '}');
    uint64_t Ts = 0;
    ASSERT_EQ(std::sscanf(L.c_str(), "{\"ts_us\":%" SCNu64, &Ts), 1);
    EXPECT_GE(Ts, PrevTs);
    PrevTs = Ts;
  }
  EXPECT_NE(Lines[0].find("\"event\":\"run-start\",\"modules\":3,"
                          "\"chaos\":true"),
            std::string::npos);
  // Embedded quotes in field values arrive escaped.
  EXPECT_NE(Lines[1].find("\"status\":\"signal 9 \\\"oom\\\"\""),
            std::string::npos);
  EXPECT_NE(Lines[1].find("\"timed_out\":false"), std::string::npos);
  std::filesystem::remove(Path);
}

TEST(EventJournal, ClosedJournalIsANoOp) {
  EventJournal J;
  EXPECT_FALSE(J.isOpen());
  // Must neither crash nor create any file.
  J.event("worker-spawn").num("worker", 0).str("s", "x").flag("f", true);
}

//===----------------------------------------------------------------------===//
// Fleet trace: merging per-module traces onto supervisor lanes.
//===----------------------------------------------------------------------===//

TEST(FleetTrace, MergesModuleTraceOntoLaneWithOffset) {
  // A real per-module trace, exactly as workers write them.
  TraceSink Sink(64);
  Sink.record("parse", 100, 5, 0);
  Sink.record("solve", 200, 50, 1);
  std::string ModulePath = tempPath("lna_fleet_module.trace.json");
  {
    std::ofstream Out(ModulePath);
    Out << Sink.renderChromeJSON();
  }

  FleetTraceBuilder B;
  B.processName(0, "supervisor");
  B.processName(3, "worker 2");
  B.threadName(3, 7, "mod_seven");
  B.span(0, 1, "dispatch mod_seven", 1000, 0);
  ASSERT_TRUE(B.mergeModuleTrace(ModulePath, 3, 7, 1000));

  std::string FleetPath = tempPath("lna_fleet_merged.trace.json");
  ASSERT_TRUE(B.write(FleetPath));
  std::string Json = slurpFile(FleetPath);
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  // Module spans landed in the worker lane with shifted timestamps.
  EXPECT_NE(Json.find("\"name\":\"parse\",\"cat\":\"lna\",\"ph\":\"X\","
                      "\"ts\":1100,\"dur\":5,\"pid\":3,\"tid\":7"),
            std::string::npos);
  EXPECT_NE(Json.find("\"ts\":1200,\"dur\":50,\"pid\":3,\"tid\":7"),
            std::string::npos);
  // Supervisor metadata and spans kept their own lanes.
  EXPECT_NE(Json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3"),
            std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"dispatch mod_seven\""), std::string::npos);
  std::filesystem::remove(ModulePath);
  std::filesystem::remove(FleetPath);
}

TEST(FleetTrace, RejectsUnparseableModuleTraceWholesale) {
  std::string Path = tempPath("lna_fleet_bad.trace.json");
  {
    std::ofstream Out(Path);
    Out << "{\"traceEvents\":[{\"name\":\"ok\",\"cat\":\"lna\",\"ph\":\"X\","
           "\"ts\":1,\"dur\":1,\"pid\":1,\"tid\":1,\"args\":{\"depth\":0}},"
           "{\"garbage\":true}]}";
  }
  FleetTraceBuilder B;
  size_t Before = B.numEvents();
  // All-or-nothing: a malformed event rejects the whole file rather
  // than merging a silently truncated lane.
  EXPECT_FALSE(B.mergeModuleTrace(Path, 2, 2, 0));
  EXPECT_EQ(B.numEvents(), Before);
  EXPECT_FALSE(B.mergeModuleTrace(tempPath("lna_fleet_missing"), 2, 2, 0));
  std::filesystem::remove(Path);
}

// The first repaint fires immediately (LastPaint is backdated), so the
// formatter used to divide by an elapsed time of ~0 and print "inf/s"
// followed by a garbage ETA. Every snapshot must render finite text.
TEST(Progress, FirstRepaintPrintsNoInfOrNan) {
  ProgressSnapshot S;
  S.Done = 3;
  S.Total = 100;
  S.ElapsedSeconds = 0.0;
  std::string Line = formatProgressLine(S);
  EXPECT_EQ(Line.find("inf"), std::string::npos) << Line;
  EXPECT_EQ(Line.find("nan"), std::string::npos) << Line;
  EXPECT_NE(Line.find("3/100 0.0/s"), std::string::npos) << Line;
  EXPECT_EQ(Line.find("eta"), std::string::npos) << Line;
}

TEST(Progress, ZeroDoneAndNegativeElapsedYieldZeroRate) {
  ProgressSnapshot S;
  S.Total = 8;
  S.ElapsedSeconds = 5.0;
  EXPECT_NE(formatProgressLine(S).find("0/8 0.0/s"), std::string::npos);
  // A stepped/adjusted clock can report negative elapsed time.
  S.Done = 4;
  S.ElapsedSeconds = -1.0;
  std::string Line = formatProgressLine(S);
  EXPECT_NE(Line.find("4/8 0.0/s"), std::string::npos) << Line;
  EXPECT_EQ(Line.find("eta"), std::string::npos) << Line;
}

TEST(Progress, EtaSuppressedUntilRateIsMeaningful) {
  ProgressSnapshot S;
  S.Done = 2;
  S.Total = 10;
  // Below the warm-up threshold the rate estimate is noise; no ETA.
  S.ElapsedSeconds = 0.5;
  EXPECT_EQ(formatProgressLine(S).find("eta"), std::string::npos);
  // Past it, the ETA appears and is finite.
  S.ElapsedSeconds = 2.0;
  std::string Line = formatProgressLine(S);
  EXPECT_NE(Line.find(" eta 8s"), std::string::npos) << Line;
}

TEST(Progress, AbsurdEtaClampsToCeilingMarker) {
  ProgressSnapshot S;
  S.Done = 1;
  S.Total = UINT64_MAX;
  S.ElapsedSeconds = 1e9; // one module per ~31 years
  std::string Line = formatProgressLine(S);
  EXPECT_NE(Line.find(" eta >30d"), std::string::npos) << Line;
  EXPECT_EQ(Line.find("inf"), std::string::npos) << Line;
}

TEST(Progress, CompleteRunPrintsNoEta) {
  ProgressSnapshot S;
  S.Done = 10;
  S.Total = 10;
  S.ElapsedSeconds = 5.0;
  S.Workers = "ii";
  S.Retries = 1;
  std::string Line = formatProgressLine(S);
  EXPECT_EQ(Line.find("eta"), std::string::npos) << Line;
  EXPECT_NE(Line.find("workers ii"), std::string::npos) << Line;
  EXPECT_NE(Line.find("retry 1"), std::string::npos) << Line;
}

} // namespace
