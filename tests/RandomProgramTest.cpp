//===- RandomProgramTest.cpp - Fuzz-style cross-checks --------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Generates random well-typed programs (locks, arrays, pointer lets,
// helpers, branches, loops) and cross-checks the toolchain on each:
//
//  * the pipeline runs and the program type checks (by construction);
//  * materializing the inferred restricts yields a program the
//    annotation checker accepts (Section 5 soundness, on arbitrary
//    programs rather than hand-picked ones);
//  * lock-analysis modes are monotone (all-strong <= confine <= none);
//  * the backwards-search solver agrees with full propagation;
//  * dynamic soundness: both the original and the inference-annotated
//    program never evaluate to err (Theorem 1).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "qual/LockAnalysis.h"
#include "semantics/Interp.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

/// A small generator of random well-typed programs.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Src.clear();
    NumLockGlobals = 1 + static_cast<unsigned>(R.below(3));
    NumArrays = 1 + static_cast<unsigned>(R.below(2));
    NumCells = 1 + static_cast<unsigned>(R.below(2));
    for (unsigned I = 0; I < NumLockGlobals; ++I)
      Src += "var g" + std::to_string(I) + " : lock;\n";
    for (unsigned I = 0; I < NumArrays; ++I)
      Src += "var a" + std::to_string(I) + " : array lock;\n";
    for (unsigned I = 0; I < NumCells; ++I)
      Src += "var cell" + std::to_string(I) + " : ptr int;\n";

    // A couple of helpers taking a lock pointer.
    NumHelpers = 1 + static_cast<unsigned>(R.below(2));
    for (unsigned I = 0; I < NumHelpers; ++I) {
      Scope S;
      S.PtrLocks.push_back("hl");
      Src += "fun helper" + std::to_string(I) + "(hl : ptr lock) : int " +
             block(S, 2) + "\n";
    }

    unsigned NumEntries = 1 + static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I < NumEntries; ++I) {
      Scope S;
      S.Ints.push_back("i");
      Src += "fun entry" + std::to_string(I) + "(i : int) : int " +
             block(S, 3) + "\n";
    }
    return Src;
  }

private:
  struct Scope {
    std::vector<std::string> Ints;
    std::vector<std::string> PtrInts;
    std::vector<std::string> PtrLocks;
  };

  std::string pick(const std::vector<std::string> &Xs) {
    return Xs[R.below(Xs.size())];
  }

  std::string intExpr(Scope &S, int Depth) {
    switch (R.below(Depth > 0 ? 5 : 3)) {
    case 0:
      return std::to_string(R.below(10));
    case 1:
      return S.Ints.empty() ? "nondet()" : pick(S.Ints);
    case 2:
      return "nondet()";
    case 3:
      return "(" + intExpr(S, Depth - 1) + " + " + intExpr(S, Depth - 1) +
             ")";
    default:
      return S.PtrInts.empty() ? std::to_string(R.below(5))
                               : "*" + pick(S.PtrInts);
    }
  }

  std::string ptrIntExpr(Scope &S, int Depth) {
    switch (R.below(3)) {
    case 0:
      if (!S.PtrInts.empty())
        return pick(S.PtrInts);
      [[fallthrough]];
    case 1:
      return "new " + intExpr(S, Depth - 1);
    default:
      return "*cell" + std::to_string(R.below(NumCells));
    }
  }

  std::string ptrLockExpr(Scope &S) {
    switch (R.below(3)) {
    case 0:
      if (!S.PtrLocks.empty())
        return pick(S.PtrLocks);
      [[fallthrough]];
    case 1:
      return "g" + std::to_string(R.below(NumLockGlobals));
    default:
      return "a" + std::to_string(R.below(NumArrays)) + "[" +
             intExpr(S, 1) + "]";
    }
  }

  std::string stmt(Scope &S, int Depth) {
    switch (R.below(Depth > 0 ? 10 : 6)) {
    case 0:
      return "work()";
    case 1:
      return "spin_lock(" + ptrLockExpr(S) + ")";
    case 2:
      return "spin_unlock(" + ptrLockExpr(S) + ")";
    case 3:
      return "helper" + std::to_string(R.below(NumHelpers)) + "(" +
             ptrLockExpr(S) + ")";
    case 4: {
      std::string Target = ptrIntExpr(S, 1);
      return Target + " := " + intExpr(S, 1);
    }
    case 5:
      return intExpr(S, 1);
    case 6: {
      // let over a lock pointer, body uses it.
      std::string Name = fresh("p");
      Scope Inner = S;
      Inner.PtrLocks.push_back(Name);
      return "let " + Name + " = " + ptrLockExpr(S) + " in " +
             block(Inner, Depth - 1);
    }
    case 7: {
      std::string Name = fresh("q");
      Scope Inner = S;
      Inner.PtrInts.push_back(Name);
      return "let " + Name + " = " + ptrIntExpr(S, 1) + " in " +
             block(Inner, Depth - 1);
    }
    case 8:
      return "if " + intExpr(S, 1) + " then " + block(S, Depth - 1) +
             " else " + block(S, Depth - 1);
    default:
      return "while nondet() do " + block(S, Depth - 1);
    }
  }

  std::string block(Scope &S, int Depth) {
    unsigned N = 1 + static_cast<unsigned>(R.below(4));
    std::string Out = "{\n";
    Scope Local = S;
    for (unsigned I = 0; I < N; ++I)
      Out += "  " + stmt(Local, Depth) + ";\n";
    Out += "  0\n}";
    return Out;
  }

  std::string fresh(const char *Prefix) {
    return std::string(Prefix) + std::to_string(NextId++);
  }

  Rng R;
  std::string Src;
  unsigned NumLockGlobals = 1, NumArrays = 1, NumCells = 1, NumHelpers = 1;
  unsigned NextId = 0;
};

struct RandomSweep : ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomSweep, ToolchainInvariantsHold) {
  ProgramGen Gen(GetParam() * 0x9e3779b97f4a7c15ULL + 17);
  std::string Source = Gen.generate();

  // 1. Parses and type checks.
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Source, Ctx, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render() << "\n" << Source;
  PipelineOptions InferOpts;
  auto Infer = runPipeline(Ctx, *P, InferOpts, Diags);
  ASSERT_TRUE(Infer.has_value()) << Diags.render() << "\n" << Source;
  EXPECT_TRUE(Infer->Inference.Violations.empty()) << Source;

  // 2. Backwards search agrees.
  {
    ASTContext Ctx2;
    Diagnostics D2;
    auto P2 = parse(Source, Ctx2, D2);
    ASSERT_TRUE(P2.has_value());
    PipelineOptions BackOpts;
    BackOpts.UseBackwardsSearch = true;
    auto Back = runPipeline(Ctx2, *P2, BackOpts, D2);
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(Infer->Inference.RestrictableBinds,
              Back->Inference.RestrictableBinds)
        << Source;
    EXPECT_EQ(Infer->Inference.SucceededConfines,
              Back->Inference.SucceededConfines)
        << Source;
  }

  // 3. Mode monotonicity.
  uint32_t ConfineErrors = analyzeLocks(Ctx, *Infer, {}).numErrors();
  uint32_t NoConfineErrors, StrongErrors;
  {
    ASTContext Ctx3;
    Diagnostics D3;
    auto P3 = parse(Source, Ctx3, D3);
    ASSERT_TRUE(P3.has_value());
    PipelineOptions CheckOpts;
    CheckOpts.Mode = PipelineMode::CheckAnnotations;
    auto Check = runPipeline(Ctx3, *P3, CheckOpts, D3);
    ASSERT_TRUE(Check.has_value()) << D3.render();
    EXPECT_TRUE(Check->Checks.ok());
    NoConfineErrors = analyzeLocks(Ctx3, *Check, {}).numErrors();
    LockAnalysisOptions Strong;
    Strong.AllStrong = true;
    StrongErrors = analyzeLocks(Ctx3, *Check, Strong).numErrors();
  }
  EXPECT_LE(StrongErrors, NoConfineErrors) << Source;
  EXPECT_LE(ConfineErrors, NoConfineErrors) << Source;

  // 4. Materialized inferred restricts pass the annotation checker.
  {
    PrintOverlay Overlay;
    Overlay.BindAsRestrict = Infer->Inference.RestrictableBinds;
    for (ExprId Id : Infer->OptionalConfines)
      if (!Infer->Inference.confineSucceeded(Id))
        Overlay.DropConfines.insert(Id);
    std::string Materialized =
        AstPrinter(Ctx, &Overlay).print(Infer->Analyzed);
    ASTContext Ctx4;
    Diagnostics D4;
    auto P4 = parse(Materialized, Ctx4, D4);
    ASSERT_TRUE(P4.has_value()) << D4.render() << "\n" << Materialized;
    PipelineOptions CheckOpts;
    CheckOpts.Mode = PipelineMode::CheckAnnotations;
    // Inference decides against the liberal restrict-effect semantics
    // (Section 5, footnote 2), so round-tripping must check under it.
    CheckOpts.LiberalRestrictEffect = true;
    auto Check = runPipeline(Ctx4, *P4, CheckOpts, D4);
    ASSERT_TRUE(Check.has_value()) << D4.render() << "\n" << Materialized;
    EXPECT_TRUE(Check->Checks.ok()) << Materialized;

    // 5. Dynamic soundness of the annotated program (Theorem 1).
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      InterpOptions IO;
      IO.NondetSeed = Seed;
      RunResult Run = runProgram(Ctx4, *P4, IO);
      EXPECT_NE(Run.Status, RunStatus::Err)
          << Run.Note << "\n" << Materialized;
      EXPECT_NE(Run.Status, RunStatus::Stuck)
          << Run.Note << "\n" << Materialized;
    }
  }

  // 6. Dynamic soundness of the original program.
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    InterpOptions IO;
    IO.NondetSeed = Seed;
    RunResult Run = runProgram(Ctx, *P, IO);
    EXPECT_NE(Run.Status, RunStatus::Err) << Run.Note << "\n" << Source;
    EXPECT_NE(Run.Status, RunStatus::Stuck) << Run.Note << "\n" << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range(0u, 40u));

} // namespace
