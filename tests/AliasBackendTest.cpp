//===- AliasBackendTest.cpp - Pluggable alias-backend tests ---*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The AliasAnalysis interface and its two backends: the LocTable event
// log they share, the Andersen solver's SCC collapsing and taint
// propagation on worked constraint graphs, the subset-refinement
// contract between the backends, and the alias-solve pipeline phase.
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"

#include "core/Session.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

//===----------------------------------------------------------------------===//
// Names and factory
//===----------------------------------------------------------------------===//

TEST(AliasBackendNames, RoundTrip) {
  EXPECT_STREQ(aliasBackendName(AliasBackendKind::Steensgaard),
               "steensgaard");
  EXPECT_STREQ(aliasBackendName(AliasBackendKind::Andersen), "andersen");
  EXPECT_EQ(aliasBackendFromName("steensgaard"),
            AliasBackendKind::Steensgaard);
  EXPECT_EQ(aliasBackendFromName("andersen"), AliasBackendKind::Andersen);
  EXPECT_EQ(aliasBackendFromName("bogus"), std::nullopt);
  EXPECT_EQ(aliasBackendFromName(""), std::nullopt);
  EXPECT_EQ(aliasBackendFromName("Andersen"), std::nullopt); // case-exact
}

TEST(AliasBackendNames, FactoryBuildsTheRequestedKind) {
  LocTable Locs;
  Locs.enableEventLog();
  std::unique_ptr<AliasAnalysis> S =
      makeAliasAnalysis(AliasBackendKind::Steensgaard, Locs);
  std::unique_ptr<AliasAnalysis> A =
      makeAliasAnalysis(AliasBackendKind::Andersen, Locs);
  ASSERT_NE(S, nullptr);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(S->kind(), AliasBackendKind::Steensgaard);
  EXPECT_EQ(A->kind(), AliasBackendKind::Andersen);
  EXPECT_STREQ(A->name(), "andersen");
}

//===----------------------------------------------------------------------===//
// Event log
//===----------------------------------------------------------------------===//

TEST(LocEventLog, DisabledByDefaultAndFreeOfEvents) {
  LocTable Locs;
  EXPECT_FALSE(Locs.eventLogEnabled());
  LocId A = Locs.fresh(Symbol(), 1);
  LocId B = Locs.fresh();
  Locs.unify(A, B);
  Locs.markUntrackable(A);
  EXPECT_TRUE(Locs.events().empty());
}

TEST(LocEventLog, RecordsRawIdsEvenWhenClassesCoincide) {
  LocTable Locs;
  Locs.enableEventLog();
  LocId A = Locs.fresh();
  LocId B = Locs.fresh();
  LocId C = Locs.fresh();
  Locs.unify(A, B, FlowDir::AToB);
  Locs.unify(B, C, FlowDir::AToB);
  // A and C already share a class; the constraint edge must still be
  // recorded, with the raw pre-unification ids.
  Locs.unify(C, A, FlowDir::AToB);
  size_t Flows = 0;
  for (const LocEvent &E : Locs.events())
    if (E.K == LocEvent::Kind::Flow) {
      ++Flows;
      EXPECT_LT(E.A, 3u);
      EXPECT_LT(E.B, 3u);
    }
  EXPECT_EQ(Flows, 3u);
}

//===----------------------------------------------------------------------===//
// Andersen solver on worked constraint graphs
//===----------------------------------------------------------------------===//

struct AndersenFixture : ::testing::Test {
  LocTable Locs;
  AndersenFixture() { Locs.enableEventLog(); }
};

TEST_F(AndersenFixture, FlowCycleCollapsesToOneComponent) {
  LocId A = Locs.fresh(), B = Locs.fresh(), C = Locs.fresh();
  Locs.unify(A, B, FlowDir::AToB);
  Locs.unify(B, C, FlowDir::AToB);
  Locs.unify(C, A, FlowDir::AToB);
  AndersenBackend AA(Locs);
  EXPECT_EQ(AA.numComponents(), 1u);
  EXPECT_TRUE(AA.mayAlias(A, C));
  EXPECT_TRUE(AA.mayAlias(B, A));
}

TEST_F(AndersenFixture, DistinctSourcesIntoOneCellDoNotAlias) {
  // *c = p; *c = r -- p and r both flow into the cell, so each aliases
  // the cell, but p and r share no value source and must not alias each
  // other even though unification put all three in one class.
  LocId Lp = Locs.fresh(Symbol(), 1);
  LocId Lr = Locs.fresh(Symbol(), 1);
  LocId Lc = Locs.fresh();
  Locs.unify(Lp, Lc, FlowDir::AToB);
  Locs.unify(Lr, Lc, FlowDir::AToB);
  SteensgaardBackend S(Locs);
  AndersenBackend A(Locs);
  EXPECT_TRUE(S.mayAlias(Lp, Lr)); // one class: Steensgaard must say yes
  EXPECT_TRUE(A.mayAlias(Lp, Lc));
  EXPECT_TRUE(A.mayAlias(Lr, Lc));
  EXPECT_FALSE(A.mayAlias(Lp, Lr)); // the refinement
  EXPECT_EQ(A.numComponents(), 3u);
}

TEST_F(AndersenFixture, SymmetricMergeAliasesBothWays) {
  LocId A = Locs.fresh(), B = Locs.fresh();
  Locs.unify(A, B); // FlowDir::None: edges in both directions
  AndersenBackend AA(Locs);
  EXPECT_TRUE(AA.mayAlias(A, B));
  EXPECT_TRUE(AA.mayAlias(B, A));
  EXPECT_EQ(AA.numComponents(), 1u);
}

TEST_F(AndersenFixture, TaintReachesSharedCellsButNotSiblingSources) {
  // Cast-taint p (the *c = p; *c = r scenario with a cast on p): the
  // taint flows forward into the shared cell, but r -- a sibling source
  // that never met a cast-derived value -- stays trackable. Steensgaard
  // conflates all three.
  LocId Lp = Locs.fresh(Symbol(), 1);
  LocId Lr = Locs.fresh(Symbol(), 1);
  LocId Lc = Locs.fresh();
  Locs.unify(Lp, Lc, FlowDir::AToB);
  Locs.unify(Lr, Lc, FlowDir::AToB);
  Locs.markUntrackable(Lp);
  SteensgaardBackend S(Locs);
  AndersenBackend A(Locs);
  EXPECT_TRUE(S.isUntrackable(Lp));
  EXPECT_TRUE(S.isUntrackable(Lr)); // class attribute: all or nothing
  EXPECT_TRUE(S.isUntrackable(Lc));
  EXPECT_TRUE(A.isUntrackable(Lp));
  EXPECT_TRUE(A.isUntrackable(Lc));  // shares cells with the cast value
  EXPECT_FALSE(A.isUntrackable(Lr)); // the refinement
}

TEST_F(AndersenFixture, TaintPullsInUpstreamSourcesOfTheSeed) {
  // q flows into p and p is the cast seed: values stored through q share
  // the tainted cells, so the backward closure must taint q too.
  LocId Lq = Locs.fresh(Symbol(), 1);
  LocId Lp = Locs.fresh(Symbol(), 1);
  Locs.unify(Lq, Lp, FlowDir::AToB);
  Locs.markUntrackable(Lp);
  AndersenBackend A(Locs);
  EXPECT_TRUE(A.isUntrackable(Lp));
  EXPECT_TRUE(A.isUntrackable(Lq));
}

TEST_F(AndersenFixture, LinearityStaysClasswise) {
  // The typestate store is keyed by location class, so linearity must
  // not be refined per raw node: both backends answer identically.
  LocId Lp = Locs.fresh(Symbol(), 1);
  LocId Lr = Locs.fresh(Symbol(), 1);
  LocId Lc = Locs.fresh();
  Locs.unify(Lp, Lc, FlowDir::AToB);
  Locs.unify(Lr, Lc, FlowDir::AToB);
  SteensgaardBackend S(Locs);
  AndersenBackend A(Locs);
  for (LocId L : {Lp, Lr, Lc}) {
    EXPECT_FALSE(Locs.isLinear(L)); // two allocation sources merged
    EXPECT_EQ(A.isLinear(L), S.isLinear(L));
  }
}

TEST_F(AndersenFixture, QueriesResolveLazilyAsEventsAccrue) {
  LocId Lp = Locs.fresh(Symbol(), 1);
  LocId Lc = Locs.fresh();
  Locs.unify(Lp, Lc, FlowDir::AToB);
  AndersenBackend A(Locs);
  EXPECT_FALSE(A.isUntrackable(Lc)); // solves here: no taint yet
  Locs.markUntrackable(Lp);          // new event after the solve
  EXPECT_TRUE(A.isUntrackable(Lc));  // re-solve picks it up
  LocId Fresh = Locs.fresh();        // new node after the solve
  EXPECT_TRUE(A.mayAlias(Fresh, Fresh));
  EXPECT_FALSE(A.mayAlias(Fresh, Lc));
}

TEST_F(AndersenFixture, ClassStructureAlwaysMatchesTheUnionFind) {
  // canonical/sameClass are the conditional solver's view of its own
  // merges; they must delegate to the shared union-find in any backend.
  LocId A = Locs.fresh(), B = Locs.fresh(), C = Locs.fresh();
  Locs.unify(A, B, FlowDir::AToB);
  AndersenBackend AA(Locs);
  SteensgaardBackend SA(Locs);
  EXPECT_TRUE(AA.sameClass(A, B));
  EXPECT_FALSE(AA.sameClass(A, C));
  EXPECT_EQ(AA.canonical(A), SA.canonical(A));
  EXPECT_EQ(AA.canonical(C), Locs.find(C));
}

TEST_F(AndersenFixture, SubsetRefinementHoldsPairwise) {
  // Property sweep over a small mixed graph: every Andersen "yes" must
  // be a Steensgaard "yes" for both mayAlias and untrackability.
  std::vector<LocId> Ls;
  for (int I = 0; I < 8; ++I)
    Ls.push_back(Locs.fresh(Symbol(), I % 2));
  Locs.unify(Ls[0], Ls[1], FlowDir::AToB);
  Locs.unify(Ls[2], Ls[1], FlowDir::AToB);
  Locs.unify(Ls[3], Ls[4]);
  Locs.unify(Ls[4], Ls[0], FlowDir::BToA);
  Locs.unify(Ls[5], Ls[6], FlowDir::AToB);
  Locs.markUntrackable(Ls[2]);
  Locs.markArrayElement(Ls[5]);
  SteensgaardBackend S(Locs);
  AndersenBackend A(Locs);
  for (LocId X : Ls) {
    if (A.isUntrackable(X)) {
      EXPECT_TRUE(S.isUntrackable(X));
    }
    if (S.isLinear(X)) {
      EXPECT_TRUE(A.isLinear(X));
    }
    for (LocId Y : Ls) {
      if (A.mayAlias(X, Y)) {
        EXPECT_TRUE(S.mayAlias(X, Y));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Pipeline integration
//===----------------------------------------------------------------------===//

// A small program with aliasing, a lock array, and an if-join (borrowed
// from the session tests): every pipeline phase has work to do.
const char *DemoProgram = R"(
var locks : array lock;
var g : ptr int;
fun f(i : int) : int {
  spin_lock(locks[i]);
  work();
  spin_unlock(locks[i]);
  let p = new 1 in *p;
  let q = g in *q;
  let a = new 2 in
  let b = new 3 in
  let m = if i then a else b in *m
}
)";

TEST(AliasSolvePhase, RunsOnlyUnderAndersen) {
  AnalysisSession SDef;
  ASSERT_TRUE(SDef.run(DemoProgram)) << SDef.diags().render();
  EXPECT_EQ(SDef.stats().findPhase("alias-solve"), nullptr);

  PipelineOptions And;
  And.AliasBackend = AliasBackendKind::Andersen;
  AnalysisSession SAnd{And};
  ASSERT_TRUE(SAnd.run(DemoProgram)) << SAnd.diags().render();
  const PhaseStats *P = SAnd.stats().findPhase("alias-solve");
  ASSERT_NE(P, nullptr);
  EXPECT_GT(P->counter("events"), 0u);
  EXPECT_GT(P->counter("nodes"), 0u);
  EXPECT_GT(P->counter("components"), 0u);
  EXPECT_LE(P->counter("components"), P->counter("nodes"));
}

TEST(AliasSolvePhase, BackendSelectionPreservesDefaultResults) {
  AnalysisSession SDef;
  PipelineOptions And;
  And.AliasBackend = AliasBackendKind::Andersen;
  AnalysisSession SAnd{And};
  ASSERT_TRUE(SDef.run(DemoProgram)) << SDef.diags().render();
  ASSERT_TRUE(SAnd.run(DemoProgram)) << SAnd.diags().render();
  // A cast-free program gives the refinement nothing to refine: the
  // inference outcome and diagnostics must match the default backend.
  EXPECT_EQ(SDef.diags().render(), SAnd.diags().render());
  for (const char *C : {"restricts-attempted", "restricts-kept",
                        "confines-attempted", "confines-kept"})
    EXPECT_EQ(SDef.stats().counter("inference", C),
              SAnd.stats().counter("inference", C))
        << C;
}

} // namespace
