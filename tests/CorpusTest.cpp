//===- CorpusTest.cpp - Driver corpus tests -------------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Validates the synthetic driver corpus: determinism, category structure,
// and -- via a parameterized sweep over all 589 modules -- that the real
// analysis reproduces each module's analytically predicted error counts
// in every mode. Every module is an end-to-end integration test.
//
//===----------------------------------------------------------------------===//

#include "corpus/Experiment.h"

#include <gtest/gtest.h>

#include <memory>
#include <string_view>

using namespace lna;

namespace {

const std::vector<ModuleSpec> &corpus() {
  static const std::vector<ModuleSpec> C = generateCorpus();
  return C;
}

TEST(Corpus, Has589Modules) { EXPECT_EQ(corpus().size(), 589u); }

TEST(Corpus, GenerationIsDeterministic) {
  auto A = generateCorpus();
  auto B = generateCorpus();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    EXPECT_EQ(A[I].Source, B[I].Source);
    EXPECT_TRUE(A[I].Expected == B[I].Expected);
  }
}

TEST(Corpus, CategoryCountsMatchThePaper) {
  uint32_t Clean = 0, Buggy = 0, Rec = 0, Hard = 0;
  for (const ModuleSpec &M : corpus()) {
    switch (M.Category) {
    case ModuleCategory::Clean:
      ++Clean;
      break;
    case ModuleCategory::Buggy:
      ++Buggy;
      break;
    case ModuleCategory::Recoverable:
      ++Rec;
      break;
    case ModuleCategory::Hard:
      ++Hard;
      break;
    case ModuleCategory::External:
      FAIL() << "generated corpus contains an external module";
      break;
    }
  }
  EXPECT_EQ(Clean, 352u);
  EXPECT_EQ(Buggy, 85u);
  EXPECT_EQ(Rec, 138u);
  EXPECT_EQ(Hard, 14u);
}

TEST(Corpus, ExpectedCountsAreCategoryConsistent) {
  for (const ModuleSpec &M : corpus()) {
    const ModeCounts &E = M.Expected;
    switch (M.Category) {
    case ModuleCategory::Clean:
      EXPECT_EQ(E.NoConfine, 0u) << M.Name;
      break;
    case ModuleCategory::Buggy:
      EXPECT_GT(E.NoConfine, 0u) << M.Name;
      EXPECT_EQ(E.NoConfine, E.AllStrong) << M.Name;
      EXPECT_EQ(E.NoConfine, E.ConfineInference) << M.Name;
      break;
    case ModuleCategory::Recoverable:
      EXPECT_GT(E.NoConfine, 0u) << M.Name;
      EXPECT_EQ(E.ConfineInference, E.AllStrong) << M.Name;
      EXPECT_LT(E.AllStrong, E.NoConfine) << M.Name;
      break;
    case ModuleCategory::Hard:
      EXPECT_GT(E.ConfineInference, E.AllStrong) << M.Name;
      EXPECT_GE(E.NoConfine, E.ConfineInference) << M.Name;
      break;
    case ModuleCategory::External:
      FAIL() << "generated corpus contains an external module";
      break;
    }
  }
}

TEST(Corpus, HardModulesCarryFigure7Names) {
  std::set<std::string> Names;
  for (const ModuleSpec &M : corpus())
    if (M.Category == ModuleCategory::Hard)
      Names.insert(M.Name);
  for (const char *Expected :
       {"wavelan_cs", "trix", "netrom", "rose", "usb_ohci", "uhci", "sb",
        "ide_tape", "mad16", "emu10k1", "trident", "digi_acceleport", "sbni",
        "iph5526"})
    EXPECT_TRUE(Names.count(Expected)) << Expected;
}

TEST(Corpus, RecoverableBudgetIsExact) {
  uint64_t Sum = 0;
  for (const ModuleSpec &M : corpus())
    if (M.Category == ModuleCategory::Recoverable)
      Sum += M.Expected.NoConfine;
  EXPECT_EQ(Sum, 2774u);
}

TEST(Corpus, SingleModuleGeneratorIsDeterministic) {
  ModuleSpec A = generateModule(ModuleCategory::Recoverable, 7, 10);
  ModuleSpec B = generateModule(ModuleCategory::Recoverable, 7, 10);
  EXPECT_EQ(A.Source, B.Source);
  ModuleSpec C = generateModule(ModuleCategory::Recoverable, 8, 10);
  EXPECT_NE(A.Source, C.Source);
}

TEST(Corpus, SingleModuleGeneratorHonorsCategory) {
  EXPECT_EQ(generateModule(ModuleCategory::Clean, 1, 4).Expected.NoConfine,
            0u);
  ModuleSpec Bug = generateModule(ModuleCategory::Buggy, 2, 3);
  EXPECT_EQ(Bug.Expected.NoConfine, 3u);
  EXPECT_EQ(Bug.Expected.AllStrong, 3u);
  ModuleSpec Rec = generateModule(ModuleCategory::Recoverable, 3, 12);
  EXPECT_EQ(Rec.Expected.NoConfine, 12u);
  EXPECT_EQ(Rec.Expected.ConfineInference, 0u);
  ModuleSpec Hard = generateModule(ModuleCategory::Hard, 4, 5);
  EXPECT_EQ(Hard.Expected.NoConfine, 5u);
  EXPECT_EQ(Hard.Expected.ConfineInference, 5u);
  EXPECT_EQ(Hard.Expected.AllStrong, 0u);
}

//===----------------------------------------------------------------------===//
// Parallel experiment runner: job count must not affect results.
//===----------------------------------------------------------------------===//

TEST(Corpus, ParallelJobsProduceByteIdenticalResults) {
  // A slice with every category represented keeps this fast while still
  // exercising real cross-thread analysis work.
  std::vector<ModuleSpec> Slice;
  uint32_t PerCategory[4] = {0, 0, 0, 0};
  for (const ModuleSpec &M : corpus()) {
    uint32_t &N = PerCategory[static_cast<uint8_t>(M.Category)];
    if (N < 12) {
      ++N;
      Slice.push_back(M);
    }
  }

  ExperimentOptions Serial;
  Serial.Jobs = 1;
  ExperimentOptions Parallel;
  Parallel.Jobs = 4;
  CorpusSummary A = runCorpusExperiment(Slice, Serial);
  CorpusSummary B = runCorpusExperiment(Slice, Parallel);

  EXPECT_EQ(renderCorpusReport(A), renderCorpusReport(B));
  EXPECT_EQ(corpusReportJSON(A, /*IncludeTimings=*/false),
            corpusReportJSON(B, /*IncludeTimings=*/false));
  ASSERT_EQ(A.Modules.size(), B.Modules.size());
  for (size_t I = 0; I < A.Modules.size(); ++I) {
    EXPECT_EQ(A.Modules[I].Name, B.Modules[I].Name);
    EXPECT_TRUE(A.Modules[I].Actual == B.Modules[I].Actual)
        << A.Modules[I].Name;
  }
  EXPECT_TRUE(A.Totals == B.Totals);
}

// A fixed-seed deterministic fault hook defined in-tree: the corpus
// library only sees the abstract support-level FaultHook, so this test
// needs no dependency on the fuzz injector. Fails every Nth
// phase-boundary site it visits.
class EveryNthSiteFails final : public FaultHook {
public:
  explicit EveryNthSiteFails(uint64_t N) : N(N) {}
  void at(const char *Site) override {
    if (std::string_view(Site).substr(0, 6) == "alloc:")
      return;
    if (++Visits % N == 0)
      throw AnalysisAbort(FailureKind::InternalError,
                          std::string("synthetic fault at ") + Site);
  }

private:
  uint64_t N;
  uint64_t Visits = 0;
};

TEST(Corpus, FaultInjectedRunIsByteIdenticalAcrossJobs) {
  std::vector<ModuleSpec> Slice(corpus().begin(), corpus().begin() + 32);

  auto makeOptions = [](unsigned Jobs) {
    ExperimentOptions Opts;
    Opts.Jobs = Jobs;
    Opts.FaultSeed = 5;
    // Per-module hooks make the failure pattern a pure function of
    // (seed, module name), so the failing module set is independent of
    // scheduling. Retry is off so those failures stay in the report.
    Opts.RetryTransient = false;
    Opts.Faults = [](uint64_t Seed) {
      return std::make_unique<EveryNthSiteFails>(3 + Seed % 29);
    };
    return Opts;
  };

  CorpusSummary A = runCorpusExperiment(Slice, makeOptions(1));
  CorpusSummary B = runCorpusExperiment(Slice, makeOptions(4));

  EXPECT_GT(A.FailedModules, 0u); // the faults must actually bite
  EXPECT_EQ(renderCorpusReport(A), renderCorpusReport(B));
  EXPECT_EQ(corpusReportJSON(A, /*IncludeTimings=*/false),
            corpusReportJSON(B, /*IncludeTimings=*/false));
}

TEST(Corpus, ExperimentAggregatesPhaseStats) {
  std::vector<ModuleSpec> Slice(corpus().begin(), corpus().begin() + 8);
  CorpusSummary S = runCorpusExperiment(Slice);
  EXPECT_EQ(S.TotalModules, 8u);
  EXPECT_EQ(S.FailedModules, 0u);
  // Every module runs the check and infer pipelines plus lock analysis.
  EXPECT_GT(S.Stats.counter("parse", "ast-nodes"), 0u);
  EXPECT_GT(S.Stats.counter("typing", "locations"), 0u);
  EXPECT_GT(S.Stats.counter("effect-constraints", "constraints-generated"),
            0u);
  EXPECT_GT(S.Stats.counter("lock-analysis", "lock-sites"), 0u);
}

TEST(Corpus, ReportJSONOmitsTimingsOnRequest) {
  std::vector<ModuleSpec> Slice(corpus().begin(), corpus().begin() + 2);
  CorpusSummary S = runCorpusExperiment(Slice);
  std::string With = corpusReportJSON(S, /*IncludeTimings=*/true);
  std::string Without = corpusReportJSON(S, /*IncludeTimings=*/false);
  EXPECT_NE(With.find("\"phases\""), std::string::npos);
  EXPECT_EQ(Without.find("\"phases\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The full sweep: every module's analysis matches its prediction.
//===----------------------------------------------------------------------===//

class ModuleSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ModuleSweep, AnalysisMatchesPrediction) {
  const ModuleSpec &M = corpus()[GetParam()];
  ModuleModeResult R = analyzeModuleAllModes(M.Source);
  ASSERT_TRUE(R.Ok) << M.Name << "\n" << R.Error;
  EXPECT_EQ(R.Counts.NoConfine, M.Expected.NoConfine) << M.Name;
  EXPECT_EQ(R.Counts.ConfineInference, M.Expected.ConfineInference) << M.Name;
  EXPECT_EQ(R.Counts.AllStrong, M.Expected.AllStrong) << M.Name;
}

std::string moduleSweepName(const ::testing::TestParamInfo<uint32_t> &Info) {
  return corpus()[Info.param].Name;
}

INSTANTIATE_TEST_SUITE_P(AllModules, ModuleSweep,
                         ::testing::Range(0u, 589u), moduleSweepName);

} // namespace
