//===- SolverTest.cpp - Solver hot-path optimization tests ----*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The guarantees the solver speed pass makes and keeps:
//
//  * Histogram::quantile at its edges (the metrics the pass is measured
//    by must themselves be trustworthy): empty histograms, Q = 1.0, and
//    the saturated bucket 64 holding UINT64_MAX.
//  * SmallElemSet behaves exactly like a reference set under randomized
//    operation sequences across the inline -> spilled boundary.
//  * SCC pre-collapse is invisible: the collapsed solver and the
//    LNA_SOLVER_BASELINE=1 uncollapsed solver produce byte-identical
//    diagnostics, annotated programs, and lock-analysis reports on every
//    committed fixture and regression reproducer, and identical
//    solutions on constructed cyclic constraint graphs.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"

#include "effects/ConstraintSystem.h"
#include "effects/SmallElemSet.h"
#include "lang/AstPrinter.h"
#include "obs/Metrics.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

using namespace lna;

namespace {

//===----------------------------------------------------------------------===//
// Histogram::quantile edges.
//===----------------------------------------------------------------------===//

TEST(HistogramQuantile, EmptyHistogramIsZeroEverywhere) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  EXPECT_EQ(H.quantile(1.0), 0u);
}

TEST(HistogramQuantile, QOneClampsToMax) {
  Histogram H;
  for (uint64_t V : {1u, 2u, 3u, 100u})
    H.record(V);
  // Rank 4 lands in the [64,127] bucket whose upper bound (127) must be
  // clamped to the observed max.
  EXPECT_EQ(H.quantile(1.0), 100u);
  // Rank 1 clamps up to the observed min.
  EXPECT_EQ(H.quantile(0.0), 1u);
  // Rank 2 is in the [2,3] bucket: coarse upper bound 3.
  EXPECT_EQ(H.quantile(0.5), 3u);
}

TEST(HistogramQuantile, SingleValueIsEveryQuantile) {
  Histogram H;
  H.record(5);
  EXPECT_EQ(H.quantile(0.0), 5u);
  EXPECT_EQ(H.quantile(0.5), 5u);
  EXPECT_EQ(H.quantile(1.0), 5u);
}

TEST(HistogramQuantile, Bucket64HoldsSaturatedValues) {
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucketOf(uint64_t(1) << 63), 64u);
  EXPECT_EQ(Histogram::bucketUpperBound(64), UINT64_MAX);
  Histogram H;
  H.record(UINT64_MAX);
  EXPECT_EQ(H.quantile(0.5), UINT64_MAX);
  EXPECT_EQ(H.quantile(1.0), UINT64_MAX);
  // The bucket-64 upper bound still clamps to the observed max.
  Histogram H2;
  H2.record(uint64_t(1) << 63);
  EXPECT_EQ(H2.quantile(1.0), uint64_t(1) << 63);
}

TEST(HistogramQuantile, ZeroAndMaxSpanTheRange) {
  Histogram H;
  H.record(0);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), UINT64_MAX);
  EXPECT_EQ(H.quantile(0.5), 0u);        // rank 1: the zero bucket
  EXPECT_EQ(H.quantile(1.0), UINT64_MAX); // rank 2: bucket 64
}

//===----------------------------------------------------------------------===//
// SmallElemSet equivalence under randomized operations.
//===----------------------------------------------------------------------===//

// Deterministic 64-bit LCG; tests must not depend on std::rand state.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 11;
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

TEST(SmallElemSet, MatchesReferenceSetUnderRandomOps) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Lcg R(Seed * 0x9E3779B97F4A7C15ULL);
    SmallElemSet S;
    std::unordered_set<uint32_t> Ref;
    // Narrow value ranges force collisions and revisit the inline ->
    // spilled boundary; wide ones exercise growth.
    uint32_t Range = Seed % 2 ? 24 : 4096;
    for (int Op = 0; Op < 2000; ++Op) {
      uint32_t V = R.below(Range);
      switch (R.below(8)) {
      case 0: // clear, rarely
        if (R.below(64) == 0) {
          S.clear();
          Ref.clear();
        }
        break;
      case 1: { // probe a random value
        uint32_t P = R.below(Range);
        EXPECT_EQ(S.contains(P), Ref.count(P) != 0);
        break;
      }
      default:
        EXPECT_EQ(S.insert(V), Ref.insert(V).second);
        break;
      }
      ASSERT_EQ(S.size(), Ref.size());
    }
    // Full content check through the iterator.
    std::unordered_set<uint32_t> Seen;
    for (uint32_t E : S) {
      EXPECT_TRUE(Ref.count(E));
      EXPECT_TRUE(Seen.insert(E).second) << "duplicate iteration";
    }
    EXPECT_EQ(Seen.size(), Ref.size());
  }
}

TEST(SmallElemSet, EqualityIsOrderIndependent) {
  Lcg R(42);
  std::vector<uint32_t> Vals;
  for (int I = 0; I < 300; ++I)
    Vals.push_back(R.below(500));
  SmallElemSet A, B;
  for (uint32_t V : Vals)
    A.insert(V);
  for (auto It = Vals.rbegin(); It != Vals.rend(); ++It)
    B.insert(*It);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A != B);
  B.insert(100000);
  EXPECT_TRUE(A != B);
}

TEST(SmallElemSet, CopyAndMovePreserveContents) {
  SmallElemSet S;
  for (uint32_t V = 0; V < 100; V += 7)
    S.insert(V);
  SmallElemSet C(S);
  EXPECT_TRUE(C == S);
  SmallElemSet A;
  A.insert(1);
  A = S;
  EXPECT_TRUE(A == S);
  SmallElemSet M(std::move(C));
  EXPECT_TRUE(M == S);
  SmallElemSet M2;
  M2 = std::move(M);
  EXPECT_TRUE(M2 == S);
  // Inline-only copies too (no heap involved).
  SmallElemSet T;
  T.insert(3);
  T.insert(9);
  SmallElemSet T2(T);
  EXPECT_TRUE(T2 == T);
  EXPECT_EQ(T2.size(), 2u);
}

TEST(SmallElemSet, SpillBoundaryIsExact) {
  SmallElemSet S;
  for (uint32_t V = 10; V < 14; ++V) // fills the 4 inline slots
    EXPECT_TRUE(S.insert(V));
  for (uint32_t V = 10; V < 14; ++V) // duplicates never spill
    EXPECT_FALSE(S.insert(V));
  EXPECT_EQ(S.size(), 4u);
  EXPECT_TRUE(S.insert(99)); // 5th distinct element spills to the heap
  EXPECT_EQ(S.size(), 5u);
  for (uint32_t V = 10; V < 14; ++V)
    EXPECT_TRUE(S.contains(V));
  EXPECT_TRUE(S.contains(99));
  EXPECT_FALSE(S.contains(1000));
}

//===----------------------------------------------------------------------===//
// SCC pre-collapse vs the uncollapsed baseline.
//===----------------------------------------------------------------------===//

// Builds the same constraint graph into \p CS: two plain-edge cycles,
// a bridge between them, a dangling chain, and an intersection fed by a
// cycle member -- every shape the collapse must treat differently.
void buildCyclicSystem(LocTable &Locs, ConstraintSystem &CS) {
  std::vector<LocId> L;
  for (int I = 0; I < 6; ++I)
    L.push_back(Locs.fresh());
  std::vector<EffVar> V;
  for (int I = 0; I < 8; ++I)
    V.push_back(CS.makeVar());
  // Cycle 1: v0 -> v1 -> v2 -> v0.
  CS.addEdge(V[0], V[1]);
  CS.addEdge(V[1], V[2]);
  CS.addEdge(V[2], V[0]);
  // Cycle 2: v3 <-> v4.
  CS.addEdge(V[3], V[4]);
  CS.addEdge(V[4], V[3]);
  // Bridge cycle 1 into cycle 2, then a chain v4 -> v5 -> v6.
  CS.addEdge(V[2], V[3]);
  CS.addEdge(V[4], V[5]);
  CS.addEdge(V[5], V[6]);
  // Seeds.
  CS.addElement(EffectKind::Read, L[0], V[0]);
  CS.addElement(EffectKind::Write, L[1], V[1]);
  CS.addElementAllKinds(L[2], V[3]);
  CS.addElement(EffectKind::Alloc, L[3], V[7]);
  // Intersection: (v0 n {read(l0)}) <= v7 (cycle member feeds it).
  CS.addIntersection(InterOperand::var(V[0]),
                     InterOperand::elem(EffectElem(EffectKind::Read, L[0])),
                     V[7]);
}

std::string solutionsToString(const ConstraintSystem &CS, uint32_t NumVars) {
  std::string Out;
  for (uint32_t I = 0; I < NumVars; ++I)
    Out += CS.solutionToString(I) + "\n";
  return Out;
}

TEST(SolverCollapse, CyclicGraphMatchesBaseline) {
  std::string Collapsed, Base;
  {
    unsetenv("LNA_SOLVER_BASELINE");
    LocTable Locs;
    ConstraintSystem CS(Locs);
    buildCyclicSystem(Locs, CS);
    CS.solve();
    Collapsed = solutionsToString(CS, CS.numVars());
    // CHECK-SAT agrees with the solved solution on every seed.
    EXPECT_TRUE(CS.reaches(EffectKind::Read, 0, 6));
    EXPECT_TRUE(CS.reaches(EffectKind::Write, 1, 0));
    EXPECT_FALSE(CS.reaches(EffectKind::Alloc, 3, 0));
  }
  {
    setenv("LNA_SOLVER_BASELINE", "1", 1);
    LocTable Locs;
    ConstraintSystem CS(Locs);
    buildCyclicSystem(Locs, CS);
    CS.solve();
    Base = solutionsToString(CS, CS.numVars());
    EXPECT_TRUE(CS.reaches(EffectKind::Read, 0, 6));
    EXPECT_TRUE(CS.reaches(EffectKind::Write, 1, 0));
    EXPECT_FALSE(CS.reaches(EffectKind::Alloc, 3, 0));
    unsetenv("LNA_SOLVER_BASELINE");
  }
  EXPECT_EQ(Collapsed, Base);
}

TEST(SolverCollapse, CycleMembersShareOneSolution) {
  unsetenv("LNA_SOLVER_BASELINE");
  LocTable Locs;
  ConstraintSystem CS(Locs);
  buildCyclicSystem(Locs, CS);
  CS.solve();
  // v0, v1, v2 sit on one plain-edge cycle: equal least solutions.
  EXPECT_TRUE(CS.solution(0) == CS.solution(1));
  EXPECT_TRUE(CS.solution(1) == CS.solution(2));
  // The cycle's solution flowed into the chain tail.
  for (uint32_t E : CS.solution(0))
    EXPECT_TRUE(CS.solution(6).contains(E));
}

//===----------------------------------------------------------------------===//
// Baseline-vs-optimized byte identity over the committed fixtures.
//===----------------------------------------------------------------------===//

// Everything user-visible one analysis produces, rendered to a string:
// success/failure, diagnostics, the annotated program, and the lock
// report under both update regimes, in both pipeline modes.
std::string analysisFingerprint(const std::string &Source) {
  std::string F;
  for (int Mode = 0; Mode < 2; ++Mode) {
    PipelineOptions Opts;
    Opts.Mode = Mode ? PipelineMode::CheckAnnotations : PipelineMode::Infer;
    AnalysisSession S(Opts);
    bool Ok = S.run(Source);
    F += Mode ? "[check]\n" : "[infer]\n";
    F += Ok ? "ok\n" : "failed\n";
    F += S.diags().render();
    if (S.failure())
      F += S.failure()->Phase + ": " + S.failure()->Message + "\n";
    if (S.hasResult()) {
      AstPrinter P(S.context());
      F += P.print(S.result().Analyzed);
      for (int Strong = 0; Strong < 2; ++Strong) {
        LockAnalysisOptions LO;
        LO.AllStrong = Strong != 0;
        LockAnalysisResult LR = analyzeLocks(S.context(), S.result(), LO);
        F += "locks/" + std::to_string(Strong) + ": " +
             std::to_string(LR.numErrors()) + "\n";
        for (const LockError &E : LR.Errors)
          F += "  " + std::to_string(E.Loc.Line) + ":" +
               std::to_string(E.Loc.Col) + (E.IsAcquire ? " acquire" : " release") +
               "\n";
      }
    }
  }
  return F;
}

class SolverIdentityCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(SolverIdentityCorpus, BaselineAndCollapsedReportsAreIdentical) {
  std::ifstream In(GetParam());
  ASSERT_TRUE(In.good()) << "cannot open " << GetParam();
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  unsetenv("LNA_SOLVER_BASELINE");
  std::string Optimized = analysisFingerprint(Source);
  setenv("LNA_SOLVER_BASELINE", "1", 1);
  std::string Baseline = analysisFingerprint(Source);
  unsetenv("LNA_SOLVER_BASELINE");

  EXPECT_EQ(Optimized, Baseline) << GetParam();
}

std::vector<std::string> identityFiles() {
  std::vector<std::string> Files;
  for (const char *Dir : {LNA_SOLVER_REGRESSION_DIR, LNA_SOLVER_FIXTURE_DIR})
    for (const auto &Entry : std::filesystem::directory_iterator(Dir))
      if (Entry.path().extension() == ".lna")
        Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string identityName(const ::testing::TestParamInfo<std::string> &Info) {
  std::string Stem = std::filesystem::path(Info.param).stem().string();
  for (char &C : Stem)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Stem;
}

INSTANTIATE_TEST_SUITE_P(Fixtures, SolverIdentityCorpus,
                         ::testing::ValuesIn(identityFiles()), identityName);

} // namespace
