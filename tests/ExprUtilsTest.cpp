//===- ExprUtilsTest.cpp - Expression utility tests -----------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "core/ConfinePlacement.h"
#include "lang/ExprUtils.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

const Expr *exprOf(ASTContext &Ctx, const std::string &Text) {
  Diagnostics Diags;
  auto P = parse("fun f() : int { " + Text + " }", Ctx, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  return cast<BlockExpr>(P->Funs[0].Body)->stmts()[0];
}

TEST(ExprUtils, StructuralEqualityOnEqualTrees) {
  ASTContext Ctx;
  const Expr *A = exprOf(Ctx, "locks[i]");
  const Expr *B = exprOf(Ctx, "locks[i]");
  EXPECT_NE(A, B); // distinct nodes
  EXPECT_TRUE(exprStructurallyEqual(A, B));
}

TEST(ExprUtils, StructuralEqualityDistinguishesNames) {
  ASTContext Ctx;
  EXPECT_FALSE(exprStructurallyEqual(exprOf(Ctx, "locks[i]"),
                                     exprOf(Ctx, "locks[j]")));
  EXPECT_FALSE(
      exprStructurallyEqual(exprOf(Ctx, "a->lck"), exprOf(Ctx, "a->other")));
}

TEST(ExprUtils, StructuralEqualityOnFieldChains) {
  ASTContext Ctx;
  EXPECT_TRUE(exprStructurallyEqual(exprOf(Ctx, "(*d->intf)->lck"),
                                    exprOf(Ctx, "(*d->intf)->lck")));
  EXPECT_FALSE(exprStructurallyEqual(exprOf(Ctx, "(*d->intf)->lck"),
                                     exprOf(Ctx, "(*d->bus)->lck")));
}

TEST(ExprUtils, CallsAreNeverStructurallyEqual) {
  ASTContext Ctx;
  // Calls are not referentially transparent; they never match.
  EXPECT_FALSE(exprStructurallyEqual(exprOf(Ctx, "locks[nondet()]"),
                                     exprOf(Ctx, "locks[nondet()]")));
}

TEST(ExprUtils, ConfinableSubjects) {
  ASTContext Ctx;
  EXPECT_TRUE(isConfinableSubject(exprOf(Ctx, "p")));
  EXPECT_TRUE(isConfinableSubject(exprOf(Ctx, "locks[i]")));
  EXPECT_TRUE(isConfinableSubject(exprOf(Ctx, "d->lck")));
  EXPECT_TRUE(isConfinableSubject(exprOf(Ctx, "(*d->intf)->lck")));
  EXPECT_TRUE(isConfinableSubject(exprOf(Ctx, "locks[0]")));
}

TEST(ExprUtils, NonConfinableSubjects) {
  ASTContext Ctx;
  // Function application is forbidden inside confined expressions (§6.1).
  EXPECT_FALSE(isConfinableSubject(exprOf(Ctx, "locks[nondet()]")));
  EXPECT_FALSE(isConfinableSubject(exprOf(Ctx, "f(x)")));
  EXPECT_FALSE(isConfinableSubject(exprOf(Ctx, "a := b")));
  EXPECT_FALSE(isConfinableSubject(exprOf(Ctx, "new 1")));
  EXPECT_FALSE(isConfinableSubject(exprOf(Ctx, "a + b")));
}

TEST(ExprUtils, FreeVarsOfSubjects) {
  ASTContext Ctx;
  std::set<Symbol> Free;
  collectFreeVars(exprOf(Ctx, "(*devs[i]->intf)->lck"), Free);
  EXPECT_EQ(Free.size(), 2u);
  EXPECT_TRUE(Free.count(Ctx.intern("devs")));
  EXPECT_TRUE(Free.count(Ctx.intern("i")));
}

TEST(ExprUtils, ContainsCallTo) {
  ASTContext Ctx;
  const Expr *E = exprOf(Ctx, "{ work(); spin_lock(locks[i]) }");
  EXPECT_TRUE(containsCallTo(E, Ctx.intern("spin_lock")));
  EXPECT_TRUE(containsCallTo(E, Ctx.intern("work")));
  EXPECT_FALSE(containsCallTo(E, Ctx.intern("spin_unlock")));
}

TEST(ExprUtils, CountNodes) {
  ASTContext Ctx;
  EXPECT_EQ(countNodes(exprOf(Ctx, "x")), 1u);
  EXPECT_EQ(countNodes(exprOf(Ctx, "*x")), 2u);
  EXPECT_EQ(countNodes(exprOf(Ctx, "a[i]")), 3u);
  EXPECT_EQ(countNodes(exprOf(Ctx, "{ 1; 2 }")), 3u);
}

TEST(ExprUtils, CloneIsStructurallyEqualButFresh) {
  ASTContext Ctx;
  const Expr *E = exprOf(Ctx, "(*devs[i]->intf)->lck");
  const Expr *C = cloneExpr(Ctx, E);
  EXPECT_NE(E, C);
  EXPECT_NE(E->id(), C->id());
  EXPECT_TRUE(exprStructurallyEqual(E, C));
}

// A deref chain far deeper than any parseable program: the parser's
// nesting guard caps sources at MaxAstDepth, so only programmatic trees
// reach this shape.
const Expr *deepDerefChain(ASTContext &Ctx, unsigned Depth) {
  const Expr *E = Ctx.varRef(SourceLoc(), Ctx.intern("x"));
  for (unsigned I = 0; I < Depth; ++I)
    E = Ctx.deref(SourceLoc(), E);
  return E;
}

TEST(ExprUtils, WorklistWalkersSurviveDeepTrees) {
  ASTContext Ctx;
  const Expr *E = deepDerefChain(Ctx, 100000);
  EXPECT_EQ(countNodes(E), 100001u);
  std::set<Symbol> Free;
  collectFreeVars(E, Free);
  EXPECT_EQ(Free.size(), 1u);
  EXPECT_TRUE(Free.count(Ctx.intern("x")));
  EXPECT_FALSE(containsCallTo(E, Ctx.intern("f")));
}

TEST(ExprUtils, BoundedRecursionIsConservativePastTheLimit) {
  ASTContext Ctx;
  const Expr *A = deepDerefChain(Ctx, MaxAstDepth + 10);
  const Expr *B = deepDerefChain(Ctx, MaxAstDepth + 10);
  // Identical shapes, but past the depth bound equality answers "don't
  // know" = false, and confine subjects are rejected.
  EXPECT_TRUE(exprStructurallyEqual(A, A)); // pointer identity short-cut
  EXPECT_FALSE(exprStructurallyEqual(A, B));
  EXPECT_FALSE(isConfinableSubject(A));
  // Within the bound the same shapes compare equal.
  const Expr *C = deepDerefChain(Ctx, 50);
  const Expr *D = deepDerefChain(Ctx, 50);
  EXPECT_TRUE(exprStructurallyEqual(C, D));
  EXPECT_TRUE(isConfinableSubject(C));
}

TEST(ExprUtils, CloneCoversAllNodeKinds) {
  ASTContext Ctx;
  for (const char *Text :
       {"1", "x", "a + b", "new 1", "newarray 0", "*p", "p := 1", "a[i]",
        "p->f", "f(1, 2)", "{ 1; 2 }", "let x = new 1 in *x",
        "restrict r = p in *r", "confine p in { *p }",
        "if nondet() then 1 else 2", "while nondet() do work()",
        "cast<ptr int>(p)"}) {
    const Expr *E = exprOf(Ctx, Text);
    const Expr *C = cloneExpr(Ctx, E);
    EXPECT_EQ(countNodes(E), countNodes(C)) << Text;
  }
}

} // namespace
