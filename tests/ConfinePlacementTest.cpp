//===- ConfinePlacementTest.cpp - Placement heuristic tests ---*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "core/ConfinePlacement.h"
#include "lang/ExprUtils.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct Placed {
  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> Prog;
  PlacementResult PR;

  void run(std::string_view Src) {
    Prog = parse(Src, Ctx, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.render();
    PR = placeConfines(Ctx, *Prog);
  }

  /// Collects the confine nodes in the rewritten program.
  std::vector<const ConfineExpr *> confines() const {
    std::vector<const ConfineExpr *> Out;
    for (const FunDef &F : PR.Rewritten.Funs)
      collect(F.Body, Out);
    return Out;
  }

  static void collect(const Expr *E, std::vector<const ConfineExpr *> &Out) {
    if (const auto *C = dyn_cast<ConfineExpr>(E))
      Out.push_back(C);
    forEachChild(E, [&Out](const Expr *Child) { collect(Child, Out); });
  }
};

TEST(ConfinePlacement, NoLocksNoCandidates) {
  Placed P;
  P.run("fun f() : int { work(); work() }");
  EXPECT_TRUE(P.PR.OptionalConfines.empty());
  EXPECT_TRUE(P.confines().empty());
}

TEST(ConfinePlacement, PairGetsWrapped) {
  Placed P;
  P.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  spin_lock(a[i]); work(); spin_unlock(a[i]) }");
  auto Cs = P.confines();
  ASSERT_FALSE(Cs.empty());
  // The widest confine covers all three statements.
  bool FoundWide = false;
  for (const ConfineExpr *C : Cs) {
    const auto *B = dyn_cast<BlockExpr>(C->body());
    FoundWide |= B && B->stmts().size() == 3;
  }
  EXPECT_TRUE(FoundWide);
  // All inserted nodes are registered as optional.
  for (const ConfineExpr *C : Cs)
    EXPECT_TRUE(P.PR.OptionalConfines.count(C->id()));
}

TEST(ConfinePlacement, MinimalRangeExcludesUnrelatedStatements) {
  Placed P;
  P.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  work();\n"
        "  spin_lock(a[i]);\n"
        "  spin_unlock(a[i]);\n"
        "  work();\n"
        "  0 }");
  // The innermost (and only) range is statements 1..2; the leading and
  // trailing work() stay outside every confine.
  for (const ConfineExpr *C : P.confines()) {
    const auto *B = dyn_cast<BlockExpr>(C->body());
    ASSERT_NE(B, nullptr);
    EXPECT_EQ(B->stmts().size(), 2u);
  }
}

TEST(ConfinePlacement, CallArgumentsAreNotCandidates) {
  Placed P;
  // nondet() inside the index: not referentially transparent (§6.1).
  P.run("var a : array lock;\n"
        "fun f() : int {\n"
        "  spin_lock(a[nondet()]); spin_unlock(a[nondet()]) }");
  EXPECT_TRUE(P.PR.OptionalConfines.empty());
}

TEST(ConfinePlacement, DistinctSubjectsGetDistinctRanges) {
  Placed P;
  P.run("var a : array lock;\nvar b : array lock;\n"
        "fun f(i : int, j : int) : int {\n"
        "  spin_lock(a[i]);\n"
        "  spin_unlock(a[i]);\n"
        "  work();\n"
        "  spin_lock(b[j]);\n"
        "  spin_unlock(b[j]) }");
  // Two disjoint subjects; each wrapped separately at this block.
  int NumA = 0, NumB = 0;
  for (const ConfineExpr *C : P.confines()) {
    const auto *I = dyn_cast<IndexExpr>(C->subject());
    ASSERT_NE(I, nullptr);
    std::string Name =
        P.Ctx.text(cast<VarRefExpr>(I->array())->name());
    NumA += Name == "a";
    NumB += Name == "b";
  }
  EXPECT_GE(NumA, 1);
  EXPECT_GE(NumB, 1);
}

TEST(ConfinePlacement, OverlappingRangesNest) {
  Placed P;
  // a-range covers [0..3], b-range [1..4]: partial overlap widens to a
  // properly nested pair.
  P.run("var a : array lock;\nvar b : array lock;\n"
        "fun f(i : int, j : int) : int {\n"
        "  spin_lock(a[i]);\n"
        "  spin_lock(b[j]);\n"
        "  spin_unlock(a[i]);\n"
        "  spin_unlock(b[j]) }");
  auto Cs = P.confines();
  EXPECT_GE(Cs.size(), 2u);
  // The program still parses as a proper tree (no exceptions): run the
  // structural check that a confine never *partially* overlaps another.
  // (By construction the tree shape guarantees this.)
}

TEST(ConfinePlacement, BoundSubjectsAreNotHoistedPastTheirBinder) {
  Placed P;
  P.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  let p = a[i] in {\n"
        "    spin_lock(p); work(); spin_unlock(p) }\n}");
  // p's scope is the let body; candidates exist inside it but none at the
  // function-body level mention p.
  for (const ConfineExpr *C : P.confines()) {
    std::set<Symbol> Free;
    collectFreeVars(C->subject(), Free);
    if (Free.count(P.Ctx.intern("p"))) {
      // Must be inside the let body, i.e. the confine's body must not be
      // the function's outer block (which contains the let).
      const auto *B = dyn_cast<BlockExpr>(C->body());
      ASSERT_NE(B, nullptr);
      for (const Expr *S : B->stmts())
        EXPECT_FALSE(isa<BindExpr>(S));
    }
  }
  EXPECT_FALSE(P.PR.OptionalConfines.empty());
}

TEST(ConfinePlacement, EnclosingBlocksGetChainCandidates) {
  Placed P;
  // The lock pair lives in a nested block; both the inner block and the
  // enclosing function body receive candidates (the §6.2 scope chain).
  P.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  { spin_lock(a[i]); work(); spin_unlock(a[i]) };\n"
        "  work()\n}");
  auto Cs = P.confines();
  EXPECT_GE(Cs.size(), 2u);
}

TEST(ConfinePlacement, LoopBodiesAreWrapped) {
  Placed P;
  P.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  while nondet() do {\n"
        "    spin_lock(a[i]); work(); spin_unlock(a[i]) }\n}");
  bool FoundInLoop = false;
  for (const ConfineExpr *C : P.confines()) {
    const auto *B = dyn_cast<BlockExpr>(C->body());
    FoundInLoop |= B && B->stmts().size() == 3;
  }
  EXPECT_TRUE(FoundInLoop);
}

TEST(ConfinePlacement, HelperCallsAreNotChangeTypeSites) {
  Placed P;
  // Calls to helpers (even ones that lock inside) are not syntactic
  // change_type statements; no candidate is placed around them.
  P.run("var a : array lock;\n"
        "fun lockit(l : ptr lock) : int { spin_lock(l) }\n"
        "fun f(i : int) : int { lockit(a[i]); work(); lockit(a[i]) }");
  for (const ConfineExpr *C : P.confines()) {
    // Candidates may exist only inside lockit (around spin_lock(l)).
    std::set<Symbol> Free;
    collectFreeVars(C->subject(), Free);
    EXPECT_TRUE(Free.count(P.Ctx.intern("l")));
  }
}

TEST(ConfinePlacement, FieldChainSubjects) {
  Placed P;
  P.run("struct D { lck : lock; }\nvar devs : array D;\n"
        "fun f(i : int) : int {\n"
        "  spin_lock(devs[i]->lck); work(); spin_unlock(devs[i]->lck) }");
  bool Found = false;
  for (const ConfineExpr *C : P.confines())
    Found |= isa<FieldAddrExpr>(C->subject());
  EXPECT_TRUE(Found);
}

TEST(ConfinePlacement, RewriteSharesUntouchedSubtrees) {
  Placed P;
  P.run("var g : lock;\n"
        "fun quiet() : int { work() }\n"
        "fun f() : int { spin_lock(g); spin_unlock(g) }");
  // quiet() contains no locks: its body is reused, not copied.
  const FunDef *Orig = P.Prog->findFun(P.Ctx.intern("quiet"));
  const FunDef *New = P.PR.Rewritten.findFun(P.Ctx.intern("quiet"));
  EXPECT_EQ(Orig->Body, New->Body);
}

TEST(ConfinePlacement, IdempotentOnAlreadyConfinedCode) {
  Placed P;
  P.run("var a : array lock;\n"
        "fun f(i : int) : int {\n"
        "  confine a[i] in { spin_lock(a[i]); spin_unlock(a[i]) } }");
  // The explicit confine stays; inserted candidates may wrap it but the
  // single-statement no-op link is skipped.
  int Explicit = 0;
  for (const ConfineExpr *C : P.confines())
    Explicit += P.PR.OptionalConfines.count(C->id()) == 0;
  EXPECT_EQ(Explicit, 1);
}

} // namespace
