//===- SessionTest.cpp - AnalysisSession driver tests ---------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Exercises the phase-structured driver layer: phase ordering per mode,
// early exit on parse/type errors, stats counters being populated for a
// known fixture, JSON dump shape, and source compatibility of the
// runPipeline wrapper.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"

#include "lang/Parser.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

// A small program with aliasing, a lock array, a confine-friendly
// lock/unlock pair, and an if-join that forces a location-class merge:
// every phase has work to do and every counter ticks.
const char *Fixture = R"(
var locks : array lock;
var g : ptr int;
fun f(i : int) : int {
  spin_lock(locks[i]);
  work();
  spin_unlock(locks[i]);
  let p = new 1 in *p;
  let q = g in *q;
  let a = new 2 in
  let b = new 3 in
  let m = if i then a else b in *m
}
)";

std::vector<std::string> phaseNames(const SessionStats &Stats) {
  std::vector<std::string> Names;
  for (const PhaseStats &P : Stats.phases())
    Names.push_back(P.Name);
  return Names;
}

TEST(Session, InferModePhaseOrdering) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  EXPECT_EQ(phaseNames(S.stats()),
            (std::vector<std::string>{"parse", "confine-placement", "typing",
                                      "effect-constraints", "inference"}));
}

TEST(Session, CheckModePhaseOrdering) {
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  AnalysisSession S(Opts);
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  EXPECT_EQ(phaseNames(S.stats()),
            (std::vector<std::string>{"parse", "typing", "effect-constraints",
                                      "check-sat"}));
}

TEST(Session, InlinePhaseRunsWhenRequested) {
  PipelineOptions Opts;
  Opts.InlineDepth = 2;
  AnalysisSession S(Opts);
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  std::vector<std::string> Names = phaseNames(S.stats());
  ASSERT_GE(Names.size(), 2u);
  EXPECT_EQ(Names[0], "parse");
  EXPECT_EQ(Names[1], "inline");
}

TEST(Session, EarlyExitOnParseError) {
  AnalysisSession S;
  EXPECT_FALSE(S.run("fun ("));
  EXPECT_TRUE(S.diags().hasErrors());
  EXPECT_FALSE(S.hasResult());
  // Only the parse phase ran; nothing downstream was attempted.
  EXPECT_EQ(phaseNames(S.stats()), std::vector<std::string>{"parse"});
}

TEST(Session, EarlyExitOnTypeError) {
  AnalysisSession S;
  EXPECT_FALSE(S.run("fun f() : int { *1 }"));
  EXPECT_TRUE(S.diags().hasErrors());
  EXPECT_FALSE(S.hasResult());
  std::vector<std::string> Names = phaseNames(S.stats());
  ASSERT_FALSE(Names.empty());
  EXPECT_EQ(Names.back(), "typing");
  for (const std::string &N : Names)
    EXPECT_NE(N, "effect-constraints");
}

TEST(Session, CountersAreNonzeroOnFixture) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  const SessionStats &St = S.stats();
  EXPECT_GT(St.counter("parse", "ast-nodes"), 0u);
  EXPECT_GT(St.counter("confine-placement", "confines-placed"), 0u);
  EXPECT_GT(St.counter("typing", "unifications"), 0u);
  EXPECT_GT(St.counter("typing", "locations"), 0u);
  EXPECT_GT(St.counter("typing", "lock-sites"), 0u);
  EXPECT_GT(St.counter("effect-constraints", "effect-vars"), 0u);
  EXPECT_GT(St.counter("effect-constraints", "constraints-generated"), 0u);
  EXPECT_GT(St.counter("inference", "restricts-attempted"), 0u);
  EXPECT_GT(St.counter("inference", "restricts-kept"), 0u);
  EXPECT_GT(St.counter("inference", "confines-kept"), 0u);
}

TEST(Session, CheckSatCountersPopulate) {
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  AnalysisSession S(Opts);
  ASSERT_TRUE(S.run("fun f(q : ptr int) : int {"
                    "  restrict r = q in *r;"
                    "  0"
                    "}")) << S.diags().render();
  EXPECT_GT(S.stats().counter("check-sat", "checksat-queries"), 0u);
  EXPECT_GT(S.stats().counter("check-sat", "checksat-visits"), 0u);
}

TEST(Session, LockAnalysisJoinsThePhasePipeline) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  LockAnalysisResult First = analyzeLocks(S, {});
  EXPECT_EQ(First.numErrors(), 0u) << "confine should recover the array";
  LockAnalysisOptions Strong;
  Strong.AllStrong = true;
  analyzeLocks(S, Strong);
  const PhaseStats *P = S.stats().findPhase("lock-analysis");
  ASSERT_NE(P, nullptr);
  // Both runs accumulate into the one phase entry.
  EXPECT_EQ(P->counter("lock-sites"),
            2 * S.stats().counter("typing", "lock-sites"));
}

TEST(Session, PhaseTimingsAreRecorded) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  for (const PhaseStats &P : S.stats().phases())
    EXPECT_GE(P.Seconds, 0.0) << P.Name;
  EXPECT_GT(S.stats().totalSeconds(), 0.0);
}

TEST(Session, StatsRenderTextMentionsEveryPhase) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  std::string Text = S.stats().renderText();
  for (const PhaseStats &P : S.stats().phases())
    EXPECT_NE(Text.find(P.Name), std::string::npos) << P.Name;
  EXPECT_NE(Text.find("total"), std::string::npos);
}

TEST(Session, StatsJSONHasExpectedShape) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  std::string Json = S.stats().renderJSON();
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"phases\":["), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"typing\""), std::string::npos);
  EXPECT_NE(Json.find("\"seconds\":"), std::string::npos);
  EXPECT_NE(Json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"total_seconds\":"), std::string::npos);
  // Braces and brackets balance (a cheap well-formedness proxy).
  int Depth = 0;
  for (char C : Json) {
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      --Depth;
    EXPECT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
}

TEST(Session, StatsMergeSumsByPhaseAndCounter) {
  SessionStats A;
  A.phase("typing").Seconds = 1.0;
  A.phase("typing").add("unifications", 3);
  SessionStats B;
  B.phase("typing").Seconds = 0.5;
  B.phase("typing").add("unifications", 4);
  B.phase("inference").add("restricts-kept", 1);
  A.merge(B);
  EXPECT_DOUBLE_EQ(A.findPhase("typing")->Seconds, 1.5);
  EXPECT_EQ(A.counter("typing", "unifications"), 7u);
  EXPECT_EQ(A.counter("inference", "restricts-kept"), 1u);
}

TEST(Session, RunPipelineWrapperStaysSourceCompatible) {
  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> P = parse(Fixture, Ctx, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();
  PipelineOptions Opts;
  std::optional<PipelineResult> R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.render();
  EXPECT_FALSE(R->OptionalConfines.empty());
  EXPECT_FALSE(R->Inference.SucceededConfines.empty());
}

TEST(Session, BorrowedContextSessionMatchesOwning) {
  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> P = parse(Fixture, Ctx, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();
  AnalysisSession Borrowed(Ctx, Diags, PipelineOptions{});
  ASSERT_TRUE(Borrowed.run(*P));
  AnalysisSession Owning{PipelineOptions{}};
  ASSERT_TRUE(Owning.run(Fixture));
  EXPECT_EQ(Borrowed.result().Inference.RestrictableBinds.size(),
            Owning.result().Inference.RestrictableBinds.size());
  // The borrowed session has no parse phase; the owning one does.
  EXPECT_EQ(Borrowed.stats().findPhase("parse"), nullptr);
  EXPECT_NE(Owning.stats().findPhase("parse"), nullptr);
}

TEST(Session, TakeResultMovesAndInvalidates) {
  AnalysisSession S;
  ASSERT_TRUE(S.run(Fixture)) << S.diags().render();
  std::optional<PipelineResult> R = S.takeResult();
  ASSERT_TRUE(R.has_value());
  EXPECT_NE(R->State, nullptr);
  EXPECT_FALSE(S.hasResult());
  EXPECT_FALSE(S.takeResult().has_value());
}

} // namespace
