//===- FuzzTest.cpp - Fuzz harness unit tests + regression replay -*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Two jobs: unit-test the pieces of the differential fuzzing harness
// (generator determinism, reducer, oracle plumbing, a short end-to-end
// run), and replay every committed reproducer under tests/regressions/
// so a fixed divergence failing again is a tier-1 test failure, not a
// fuzzing-session discovery.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Reducer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

using namespace lna;

namespace {

TEST(FuzzGenerator, DeterministicInSeed) {
  for (uint64_t Seed : {1u, 7u, 12345u}) {
    EXPECT_EQ(generateFuzzProgram(Seed), generateFuzzProgram(Seed));
  }
  EXPECT_NE(generateFuzzProgram(1), generateFuzzProgram(2));
}

TEST(FuzzGenerator, RespectsFeatureKnobs) {
  GeneratorOptions Opts;
  Opts.ExplicitRestricts = false;
  Opts.Confines = false;
  Opts.Casts = false;
  // Knobs only gate emission, so over many seeds none of the disabled
  // constructs may appear.
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    std::string P = generateFuzzProgram(Seed, Opts);
    EXPECT_EQ(P.find("restrict"), std::string::npos) << P;
    EXPECT_EQ(P.find("confine"), std::string::npos) << P;
    EXPECT_EQ(P.find("cast"), std::string::npos) << P;
  }
}

TEST(FuzzSeeds, PerRunSeedsAreStableAndSpread) {
  EXPECT_EQ(fuzzRunSeed(1, 0), fuzzRunSeed(1, 0));
  EXPECT_NE(fuzzRunSeed(1, 0), fuzzRunSeed(1, 1));
  EXPECT_NE(fuzzRunSeed(1, 0), fuzzRunSeed(2, 0));
}

TEST(FuzzOracles, NamesRoundTrip) {
  for (unsigned I = 0; I < NumOracleKinds; ++I) {
    OracleKind K = static_cast<OracleKind>(I);
    auto Back = oracleFromName(oracleName(K));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, K);
  }
  EXPECT_FALSE(oracleFromName("no-such-oracle").has_value());
}

TEST(FuzzOracles, UnparseableProgramsAreVacuous) {
  for (unsigned I = 0; I < NumOracleKinds; ++I) {
    OracleOutcome O = runOracle(static_cast<OracleKind>(I), "fun f( {");
    EXPECT_FALSE(O.Applicable);
    EXPECT_FALSE(O.Failed);
  }
}

TEST(FuzzOracles, CleanProgramPassesAllOracles) {
  const char *Src = "var g : ptr int;\n"
                    "fun f() : int { restrict r = g in { r := 1; *r } }";
  for (unsigned I = 0; I < NumOracleKinds; ++I) {
    OracleOutcome O = runOracle(static_cast<OracleKind>(I), Src);
    EXPECT_FALSE(O.Failed) << oracleName(static_cast<OracleKind>(I)) << ": "
                           << O.Message;
  }
}

TEST(FuzzReducer, ShrinksToPredicateMinimum) {
  const char *Src = "var g : ptr int;\n"
                    "fun f() : int { 1 + 2; g := 3; work(); 0 }\n"
                    "fun h() : int { 40 + 2 }";
  auto StillFails = [](std::string_view S) {
    return S.find("40") != std::string_view::npos;
  };
  ReduceResult R = reduceProgram(Src, StillFails);
  EXPECT_TRUE(StillFails(R.Source));
  EXPECT_LT(R.Source.size(), std::string_view(Src).size());
  // Everything unrelated to the predicate should be gone.
  EXPECT_EQ(R.Source.find("work"), std::string::npos) << R.Source;
  EXPECT_EQ(R.Source.find("var g"), std::string::npos) << R.Source;
  EXPECT_GT(R.StepsTaken, 0u);
}

TEST(FuzzReducer, ReturnsInputWhenPredicateNeverHolds) {
  ReduceResult R = reduceProgram("fun f() : int { 0 }",
                                 [](std::string_view) { return false; });
  EXPECT_EQ(R.Source, "fun f() : int { 0 }");
  EXPECT_EQ(R.StepsTaken, 0u);
}

TEST(FuzzHarness, ShortRunIsCleanAndCounted) {
  FuzzOptions Opts;
  Opts.Seed = 2;
  Opts.Runs = 50;
  Opts.Gen.MaxSize = 24;
  FuzzReport R = runFuzz(Opts);
  EXPECT_TRUE(R.ok()) << (R.Failures.empty()
                              ? ""
                              : R.Failures[0].Message + "\n" +
                                    R.Failures[0].Reduced);
  EXPECT_EQ(R.RunsCompleted, 50u);
  EXPECT_NE(R.Stats.renderText().find("fuzz"), std::string::npos);
}

TEST(FuzzHarness, ReplayRejectsHeaderlessInput) {
  OracleOutcome O = replayRegressionSource("fun f() : int { 0 }");
  EXPECT_FALSE(O.Applicable);
  EXPECT_FALSE(O.Message.empty());
}

TEST(FuzzHarness, RenderedReproducersReplay) {
  FuzzFailure F;
  F.Oracle = OracleKind::PrintParseRoundTrip;
  F.Seed = 99;
  F.Message = "synthetic";
  F.Reduced = "fun f() : int { 0 }";
  std::string Name;
  OracleOutcome O = replayRegressionSource(renderRegressionFile(F), &Name);
  EXPECT_EQ(Name, "round-trip");
  EXPECT_FALSE(O.Failed); // a healthy program: divergence must not appear
}

// Replays the committed regression corpus. Every file here is a reduced
// reproducer of a divergence that was found by fuzzing and then fixed;
// Failed means the bug is back.
class RegressionCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(RegressionCorpus, StaysFixed) {
  std::ifstream In(GetParam());
  ASSERT_TRUE(In.good()) << "cannot open " << GetParam();
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Name;
  OracleOutcome O = replayRegressionSource(Buf.str(), &Name);
  EXPECT_FALSE(Name.empty()) << "missing/bad header in " << GetParam();
  EXPECT_FALSE(O.Failed) << GetParam() << " regressed (" << Name
                         << "): " << O.Message;
}

std::vector<std::string> regressionFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(LNA_REGRESSION_DIR))
    if (Entry.path().extension() == ".lna")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

INSTANTIATE_TEST_SUITE_P(Committed, RegressionCorpus,
                         ::testing::ValuesIn(regressionFiles()),
                         [](const auto &Info) {
                           std::string Stem =
                               std::filesystem::path(Info.param).stem().string();
                           for (char &C : Stem)
                             if (C == '-' || C == '.')
                               C = '_';
                           return Stem;
                         });

} // namespace
