//===- PrinterTest.cpp - Pretty printer and overlay tests -----*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

TEST(Printer, RendersDeclarations) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("struct D { lck : lock; n : int; }\n"
                 "var d : D;\nvar a : array lock;\n"
                 "fun f(restrict l : ptr lock, i : int) : int { 0 }",
                 Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  std::string Out = AstPrinter(Ctx).print(*P);
  EXPECT_NE(Out.find("struct D {"), std::string::npos);
  EXPECT_NE(Out.find("lck : lock;"), std::string::npos);
  EXPECT_NE(Out.find("var a : array lock;"), std::string::npos);
  EXPECT_NE(Out.find("restrict l : ptr lock"), std::string::npos);
}

TEST(Printer, RendersExpressionsCompactly) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("fun f(p : ptr int, i : int) : int {\n"
                 "  *p;\n"
                 "  p := i + 1;\n"
                 "  cast<ptr int>(p);\n"
                 "  if i == 0 then 1 else 2\n}",
                 Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  std::string Out = AstPrinter(Ctx).print(*P);
  EXPECT_NE(Out.find("*p;"), std::string::npos);
  EXPECT_NE(Out.find("p := (i + 1);"), std::string::npos);
  EXPECT_NE(Out.find("cast<ptr int>(p);"), std::string::npos);
  EXPECT_NE(Out.find("if (i == 0) then 1 else 2;"), std::string::npos);
}

TEST(Printer, OverlayTurnsLetIntoRestrict) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("fun f(q : ptr int) : int { let p = q in *p }", Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  const auto *Body = cast<BlockExpr>(P->Funs[0].Body);
  const auto *Bind = cast<BindExpr>(Body->stmts()[0]);
  PrintOverlay Overlay;
  Overlay.BindAsRestrict.insert(Bind->id());
  std::string Out = AstPrinter(Ctx, &Overlay).print(*P);
  EXPECT_NE(Out.find("restrict p = q in"), std::string::npos);
  EXPECT_EQ(Out.find("let p"), std::string::npos);
}

TEST(Printer, OverlayDropsFailedConfines) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("var a : array lock;\n"
                 "fun f(i : int) : int {\n"
                 "  confine a[i] in { spin_lock(a[i]) } }",
                 Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  const auto *Body = cast<BlockExpr>(P->Funs[0].Body);
  const auto *Conf = cast<ConfineExpr>(Body->stmts()[0]);
  PrintOverlay Overlay;
  Overlay.DropConfines.insert(Conf->id());
  std::string Out = AstPrinter(Ctx, &Overlay).print(*P);
  EXPECT_EQ(Out.find("confine"), std::string::npos);
  EXPECT_NE(Out.find("spin_lock(a[i])"), std::string::npos);
}

TEST(Printer, InferredAnnotationsRoundTripThroughTheParser) {
  const char *Src = "var locks : array lock;\n"
                    "fun f(i : int) : int {\n"
                    "  spin_lock(locks[i]); work(); spin_unlock(locks[i]) }";
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  PrintOverlay Overlay;
  Overlay.BindAsRestrict = R->Inference.RestrictableBinds;
  for (ExprId Id : R->OptionalConfines)
    if (!R->Inference.confineSucceeded(Id))
      Overlay.DropConfines.insert(Id);
  std::string Annotated = AstPrinter(Ctx, &Overlay).print(R->Analyzed);
  EXPECT_NE(Annotated.find("confine locks[i] in"), std::string::npos);

  // The printed program parses and, with the explicit annotations now in
  // the source, yields a clean lock analysis without any inference.
  ASTContext Ctx2;
  Diagnostics D2;
  auto P2 = parse(Annotated, Ctx2, D2);
  ASSERT_TRUE(P2.has_value()) << D2.render() << "\n" << Annotated;
  PipelineOptions CheckOpts;
  CheckOpts.Mode = PipelineMode::CheckAnnotations;
  auto R2 = runPipeline(Ctx2, *P2, CheckOpts, D2);
  ASSERT_TRUE(R2.has_value());
  EXPECT_TRUE(R2->Checks.ok());
  EXPECT_EQ(analyzeLocks(Ctx2, *R2, {}).numErrors(), 0u);
}

//===----------------------------------------------------------------------===//
// Regression tests for bugs found by the random-program sweep.
//===----------------------------------------------------------------------===//

TEST(QualRegression, RecursionHavocReachesUnmaterializedLocations) {
  // g is only touched *after* the recursive havoc; its state must be top
  // regardless of whether any earlier protocol materialized its entry.
  const char *Src = "var g : lock;\n"
                    "fun r(n : int) : int {\n"
                    "  if n == 0 then 0 else r(n - 1) }\n"
                    "fun f() : int {\n"
                    "  r(2);\n"
                    "  spin_lock(g);\n"
                    "  spin_unlock(g)\n}";
  for (PipelineMode Mode :
       {PipelineMode::CheckAnnotations, PipelineMode::Infer}) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    ASSERT_TRUE(P.has_value());
    PipelineOptions Opts;
    Opts.Mode = Mode;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    ASSERT_TRUE(R.has_value());
    // The acquire after the havoc cannot be verified in either mode --
    // and crucially the two modes agree.
    EXPECT_EQ(analyzeLocks(Ctx, *R, {}).numErrors(), 1u);
  }
}

TEST(QualRegression, LinearScopeExitIsACopyNotAJoin) {
  // The lock is acquired through a restrictable binder and released
  // through the original name after the scope. For a singleton (linear)
  // location, the scope exit is the paper's exact S[l -> S(l')]: the
  // held state transfers, and the release verifies.
  const char *Src = "var g : lock;\n"
                    "fun f() : int {\n"
                    "  let p = g in { spin_lock(p) };\n"
                    "  spin_unlock(g)\n}";
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts; // inference mode: p becomes restrict
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Inference.RestrictableBinds.size(), 1u);
  EXPECT_EQ(analyzeLocks(Ctx, *R, {}).numErrors(), 0u);
}

TEST(QualRegression, NonlinearScopeExitStillJoins) {
  // Same shape over an array element: the element location stands for
  // many cells, so the exit must join and the release stays unverifiable.
  const char *Src = "var a : array lock;\n"
                    "fun f(i : int) : int {\n"
                    "  let p = a[i] in { spin_lock(p) };\n"
                    "  spin_unlock(a[i])\n}";
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(analyzeLocks(Ctx, *R, {}).numErrors(), 1u);
}

TEST(QualRegression, StrictAndLiberalRestrictEffectSemantics) {
  // A recursive function re-restricting a location whose binder is never
  // used: rejected under the strict Figure 2/3 semantics (restricting is
  // an effect), accepted under the liberal Section 5 footnote-2 semantics
  // that inference decides against.
  const char *Src = "var cell : ptr int;\n"
                    "fun r(n : int) : int {\n"
                    "  restrict q = *cell in {\n"
                    "    if n == 0 then 0 else r(n - 1)\n  }\n}";
  for (bool Liberal : {false, true}) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    ASSERT_TRUE(P.has_value());
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    Opts.LiberalRestrictEffect = Liberal;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->Checks.ok(), Liberal);
  }
}

TEST(Printer, CompoundOperandsKeepParentheses) {
  // Statement-like forms in operand positions must re-parse to the same
  // tree; found by the round-trip fuzz oracle.
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("fun f(x : ptr int) : int {\n"
                 "  new ((x := 1) + (if nondet() then 1 else 2));\n"
                 "  *((let t = x in t)) }",
                 Ctx, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();
  std::string Out = AstPrinter(Ctx).print(*P);
  EXPECT_NE(Out.find("new ((x := 1) + (if nondet() then 1 else 2))"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("*(let t = x in t)"), std::string::npos) << Out;
}

TEST(Printer, DeepProgrammaticTreeTruncatesInsteadOfOverflowing) {
  // The parser's nesting guard keeps parsed ASTs under MaxAstDepth, so
  // only programmatically built trees can trip the printer's guard.
  ASTContext Ctx;
  const Expr *E = Ctx.varRef(SourceLoc(), Ctx.intern("x"));
  for (unsigned I = 0; I < MaxAstDepth + 50; ++I)
    E = Ctx.deref(SourceLoc(), E);
  AstPrinter Printer(Ctx);
  std::string Out = Printer.print(E);
  EXPECT_TRUE(Printer.truncated());
  EXPECT_NE(Out.find("0"), std::string::npos); // placeholder leaf
  // A tree inside the bound prints fully and does not set the flag.
  const Expr *Shallow = Ctx.deref(
      SourceLoc(), Ctx.varRef(SourceLoc(), Ctx.intern("y")));
  EXPECT_EQ(Printer.print(Shallow), "*y");
  EXPECT_FALSE(Printer.truncated());
}

TEST(QualRegression, StrictSemanticsStillRejectsUsedDoubleRestrict) {
  // When the binder *is* used, both semantics agree: double restrict is
  // illegal.
  const char *Src = "fun f(x : ptr int) : int {\n"
                    "  restrict y = x in restrict z = x in *z }";
  for (bool Liberal : {false, true}) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    ASSERT_TRUE(P.has_value());
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    Opts.LiberalRestrictEffect = Liberal;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    ASSERT_TRUE(R.has_value());
    EXPECT_FALSE(R->Checks.ok());
  }
}

} // namespace
