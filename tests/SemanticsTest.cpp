//===- SemanticsTest.cpp - Operational semantics tests --------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Tests for the Section 3.2 big-step semantics, including executable
// soundness (Theorem 1): programs accepted by the restrict checker never
// evaluate to err, and the checker's rejections correspond to real
// dynamic witnesses for the paper's canonical violation examples.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "corpus/Corpus.h"
#include "lang/Parser.h"
#include "semantics/Interp.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct Ran {
  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> Prog;

  RunResult run(std::string_view Src, uint64_t Seed = 1) {
    Prog = parse(Src, Ctx, Diags);
    EXPECT_TRUE(Prog.has_value()) << Diags.render();
    if (!Prog) {
      RunResult R;
      R.Status = RunStatus::Stuck;
      R.Note = "parse error";
      return R;
    }
    InterpOptions Opts;
    Opts.NondetSeed = Seed;
    return runProgram(Ctx, *Prog, Opts);
  }
};

//===----------------------------------------------------------------------===//
// Basic evaluation
//===----------------------------------------------------------------------===//

TEST(Interp, Arithmetic) {
  Ran R;
  RunResult Res = R.run("fun main() : int { 1 + 2 - (4 - 3) }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 2);
}

TEST(Interp, LetBindingAndDeref) {
  Ran R;
  RunResult Res = R.run("fun main() : int { let p = new 41 in *p + 1 }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 42);
}

TEST(Interp, AssignmentThroughPointer) {
  Ran R;
  RunResult Res =
      R.run("fun main() : int { let p = new 0 in { p := 7; *p } }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 7);
}

TEST(Interp, ArrayCellsAreDistinct) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let a = newarray 0 in {\n"
                        "    a[0] := 5; a[1] := 9; *a[0] + *a[1] } }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 14);
}

TEST(Interp, IndexWrapsIntoBounds) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let a = newarray 3 in *a[17] }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 3);
}

TEST(Interp, StructFieldsAreAddressable) {
  Ran R;
  RunResult Res = R.run("struct D { x : int; y : int; }\nvar d : D;\n"
                        "fun main() : int {\n"
                        "  d->x := 4; d->y := 38; *d->x + *d->y }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 42);
}

TEST(Interp, RecursiveStructTiesTheKnot) {
  Ran R;
  RunResult Res = R.run("struct N { next : ptr N; v : int; }\nvar head : N;\n"
                        "fun main() : int {\n"
                        "  head->v := 11;\n"
                        "  *(*head->next)->v }");
  // next points back at the same instance, so the value reads back.
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 11);
}

TEST(Interp, FunctionCallsAndRecursion) {
  Ran R;
  RunResult Res = R.run("fun fib(n : int) : int {\n"
                        "  if n < 2 then n else fib(n - 1) + fib(n - 2) }\n"
                        "fun main() : int { fib(10) }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 55);
}

TEST(Interp, WhileLoopTerminates) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let c = new 0 in {\n"
                        "    while *c < 10 do c := *c + 1;\n"
                        "    *c } }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 10);
}

TEST(Interp, DivergenceRunsOutOfFuel) {
  Ran R;
  RunResult Res = R.run("fun main() : int { while 1 do work() }");
  EXPECT_EQ(Res.Status, RunStatus::OutOfFuel);
}

TEST(Interp, NondetIsDeterministicPerSeed) {
  const char *Src = "fun main() : int { nondet() + nondet() + nondet() }";
  Ran A, B;
  RunResult RA = A.run(Src, 7);
  RunResult RB = B.run(Src, 7);
  EXPECT_EQ(RA.Value, RB.Value);
}

TEST(Interp, LockPrimitivesTouchTheCell) {
  Ran R;
  RunResult Res = R.run("var g : lock;\n"
                        "fun main() : int { spin_lock(g);"
                        " spin_unlock(g); 0 }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
}

//===----------------------------------------------------------------------===//
// The restrict semantics (Section 3.2)
//===----------------------------------------------------------------------===//

TEST(Interp, RestrictAllowsAccessThroughTheName) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let q = new 5 in restrict p = q in *p }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  EXPECT_EQ(Res.Value, 5);
}

TEST(Interp, RestrictRevokesTheOriginalName) {
  // The paper's canonical violation: *q inside the scope reduces to err.
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let q = new 5 in restrict p = q in { *p; *q } }");
  EXPECT_EQ(Res.Status, RunStatus::Err);
}

TEST(Interp, OriginalNameIsRestoredAfterTheScope) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let q = new 5 in {\n"
                        "    restrict p = q in (p := 9);\n"
                        "    *q } }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
  // The write through p is copied back at scope exit.
  EXPECT_EQ(Res.Value, 9);
}

TEST(Interp, EscapedCopyIsRevokedAfterTheScope) {
  // The copy escapes; using it after the scope witnesses the violation
  // (the semantics revokes l' on exit).
  Ran R;
  RunResult Res = R.run("var x : ptr int;\n"
                        "fun main() : int {\n"
                        "  let q = new 5 in {\n"
                        "    restrict p = q in { x := p; 0 };\n"
                        "    **x } }");
  EXPECT_EQ(Res.Status, RunStatus::Err);
}

TEST(Interp, DoubleRestrictBothUsedIsErr) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let x = new 1 in\n"
                        "  restrict y = x in\n"
                        "  restrict z = x in { *y; *z } }");
  EXPECT_EQ(Res.Status, RunStatus::Err);
}

TEST(Interp, SequentialRestrictsAreFine) {
  Ran R;
  RunResult Res = R.run("fun main() : int {\n"
                        "  let x = new 1 in {\n"
                        "    restrict y = x in *y;\n"
                        "    restrict z = x in *z } }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
}

TEST(Interp, RestrictParameterRevokesCallerAliases) {
  Ran R;
  RunResult Res = R.run("var g : lock;\n"
                        "fun f(restrict l : ptr lock) : int {\n"
                        "  spin_lock(g); 0 }\n"
                        "fun main() : int { f(g) }");
  // f touches the lock through the global alias while it is restricted.
  EXPECT_EQ(Res.Status, RunStatus::Err);
}

TEST(Interp, ConfineOccurrencesDenoteTheFreshCell) {
  Ran R;
  RunResult Res = R.run("var a : array lock;\n"
                        "fun main(i : int) : int {\n"
                        "  confine a[i] in {\n"
                        "    spin_lock(a[i]);\n"
                        "    spin_unlock(a[i])\n  } }");
  EXPECT_EQ(Res.Status, RunStatus::Value);
}

TEST(Interp, ConfineRevokesOtherAccessPaths) {
  // Accessing the same element through a different syntactic expression
  // (which evaluates to the revoked original) is err.
  Ran R;
  RunResult Res = R.run("var a : array lock;\n"
                        "fun main() : int {\n"
                        "  confine a[0] in {\n"
                        "    spin_lock(a[0]);\n"
                        "    spin_unlock(a[0 + 0])\n  } }");
  EXPECT_EQ(Res.Status, RunStatus::Err);
}

TEST(Interp, ShadowedConfineOccurrenceUsesTheBinding) {
  Ran R;
  RunResult Res = R.run("var g1 : lock;\nvar g2 : lock;\n"
                        "fun main(p : ptr lock) : int {\n"
                        "  confine p in {\n"
                        "    spin_lock(p);\n"
                        "    let p = g2 in spin_lock(p);\n"
                        "    spin_unlock(p)\n  } }");
  // The inner spin_lock(p) uses the let-bound g2 pointer, not the
  // revoked confined original; no err.
  EXPECT_EQ(Res.Status, RunStatus::Value);
}

TEST(Interp, FaultMessagesNameTheViolatedScope) {
  Ran R;
  RunResult Res = R.run("var g : ptr int;\n"
                        "fun main() : int {\n"
                        "  restrict r = g in g := 1 }");
  ASSERT_EQ(Res.Status, RunStatus::Err);
  EXPECT_NE(Res.Note.find("restrict binding"), std::string::npos) << Res.Note;
  EXPECT_NE(Res.Note.find("line 3"), std::string::npos) << Res.Note;
}

TEST(Interp, ConfineFaultMessagesNameTheScope) {
  Ran R;
  RunResult Res = R.run("var a : array lock;\n"
                        "fun main() : int {\n"
                        "  confine a[0] in spin_lock(a[0 + 0]) }");
  ASSERT_EQ(Res.Status, RunStatus::Err);
  EXPECT_NE(Res.Note.find("confine scope"), std::string::npos) << Res.Note;
  EXPECT_NE(Res.Note.find("line 3"), std::string::npos) << Res.Note;
}

TEST(Interp, RestrictParamFaultMessagesNameTheFunction) {
  Ran R;
  RunResult Res = R.run("var g : lock;\n"
                        "fun f(restrict l : ptr lock) : int {\n"
                        "  spin_lock(g); 0 }\n"
                        "fun main() : int { f(g) }");
  ASSERT_EQ(Res.Status, RunStatus::Err);
  EXPECT_NE(Res.Note.find("restrict parameter"), std::string::npos)
      << Res.Note;
  EXPECT_NE(Res.Note.find("line 2"), std::string::npos) << Res.Note;
}

//===----------------------------------------------------------------------===//
// Executable Theorem 1: checker-accepted programs never evaluate to err.
//===----------------------------------------------------------------------===//

const char *CheckedPrograms[] = {
    // The valid examples of Sections 1-2 and 6.
    "fun f(q : ptr int) : int { restrict p = q in *p }",
    "fun f(q : ptr int) : int { restrict p = q in let r = p in *r }",
    "fun f(q : ptr int) : int {\n"
    "  restrict p = q in { restrict r = p in *r; *p } }",
    "var locks : array lock;\n"
    "fun do_with_lock(restrict l : ptr lock) : int {\n"
    "  spin_lock(l); work(); spin_unlock(l) }\n"
    "fun foo(i : int) : int { do_with_lock(locks[i]) }",
    "var locks : array lock;\n"
    "fun f(i : int) : int {\n"
    "  confine locks[i] in {\n"
    "    spin_lock(locks[i]); work(); spin_unlock(locks[i]) } }",
    "struct D { lck : lock; }\nvar devs : array D;\n"
    "fun f(i : int) : int {\n"
    "  confine devs[i]->lck in {\n"
    "    spin_lock(devs[i]->lck); spin_unlock(devs[i]->lck) } }",
    "fun f(q : ptr int, b : ptr int) : int {\n"
    "  restrict p = q in { *p; *b } }",
};

struct Theorem1 : ::testing::TestWithParam<const char *> {};

TEST_P(Theorem1, AcceptedProgramsNeverEvaluateToErr) {
  // 1. The checker accepts.
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(GetParam(), Ctx, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value()) << Diags.render();
  ASSERT_TRUE(R->Checks.ok());

  // 2. No evaluation (across nondet seeds) reduces to err.
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    InterpOptions IO;
    IO.NondetSeed = Seed;
    RunResult Res = runProgram(Ctx, *P, IO);
    EXPECT_NE(Res.Status, RunStatus::Err) << "seed " << Seed << ": "
                                          << Res.Note;
    EXPECT_NE(Res.Status, RunStatus::Stuck) << Res.Note;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, Theorem1,
                         ::testing::ValuesIn(CheckedPrograms));

//===----------------------------------------------------------------------===//
// Theorem 1 over the corpus: every generated module is accepted by the
// checker (no explicit annotations to violate) and must never err.
//===----------------------------------------------------------------------===//

struct CorpusSoundness
    : ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(CorpusSoundness, ModulesNeverEvaluateToErr) {
  auto [CatIdx, Seed] = GetParam();
  ModuleSpec M = generateModule(static_cast<ModuleCategory>(CatIdx),
                                Seed + 21, 4);
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(M.Source, Ctx, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();
  for (uint64_t S = 1; S <= 4; ++S) {
    InterpOptions IO;
    IO.NondetSeed = S;
    RunResult Res = runProgram(Ctx, *P, IO);
    EXPECT_NE(Res.Status, RunStatus::Err) << M.Name << ": " << Res.Note;
    EXPECT_NE(Res.Status, RunStatus::Stuck) << M.Name << ": " << Res.Note;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorpusSoundness,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Range(0u, 6u)));

//===----------------------------------------------------------------------===//
// Inference soundness at runtime: materialize the inferred restricts and
// run -- still no err (the dynamic face of the Section 5 optimality
// tests).
//===----------------------------------------------------------------------===//

TEST(Theorem1Inference, InferredRestrictsAreDynamicallySafe) {
  const char *Src = "var locks : array lock;\n"
                    "fun f(i : int) : int {\n"
                    "  let p = locks[i] in {\n"
                    "    spin_lock(p); work(); spin_unlock(p) } }";
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  Opts.PlaceConfines = false;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->Inference.RestrictableBinds.size(), 1u);

  // Re-parse with the restrict materialized and run.
  std::string Materialized = Src;
  size_t Pos = Materialized.find("let p");
  Materialized.replace(Pos, 5, "restrict p");
  ASTContext Ctx2;
  Diagnostics Diags2;
  auto P2 = parse(Materialized, Ctx2, Diags2);
  ASSERT_TRUE(P2.has_value()) << Diags2.render();
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    InterpOptions IO;
    IO.NondetSeed = Seed;
    RunResult Res = runProgram(Ctx2, *P2, IO);
    EXPECT_NE(Res.Status, RunStatus::Err) << Res.Note;
  }
}

} // namespace
