//===- ParserTest.cpp - Parser unit tests ---------------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

std::optional<Program> parseOk(ASTContext &Ctx, std::string_view Src) {
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  return P;
}

const Expr *parseBody(ASTContext &Ctx, const std::string &BodySrc) {
  auto P = parseOk(Ctx, "fun f() : int " + BodySrc);
  if (!P || P->Funs.empty())
    return nullptr;
  return P->Funs[0].Body;
}

/// Last statement of the single function's body block.
const Expr *lastStmt(ASTContext &Ctx, const std::string &BodySrc) {
  const Expr *Body = parseBody(Ctx, BodySrc);
  if (!Body)
    return nullptr;
  const auto *B = cast<BlockExpr>(Body);
  return B->stmts().empty() ? nullptr : B->stmts().back();
}

TEST(Parser, EmptyProgram) {
  ASTContext Ctx;
  auto P = parseOk(Ctx, "");
  EXPECT_TRUE(P->Funs.empty());
  EXPECT_TRUE(P->Globals.empty());
  EXPECT_TRUE(P->Structs.empty());
}

TEST(Parser, GlobalDecls) {
  ASTContext Ctx;
  auto P = parseOk(Ctx, "var g : lock;\nvar a : array lock;\n"
                        "var p : ptr ptr int;");
  ASSERT_EQ(P->Globals.size(), 3u);
  EXPECT_EQ(P->Globals[0].DeclType->kind(), TypeExpr::Kind::Lock);
  EXPECT_EQ(P->Globals[1].DeclType->kind(), TypeExpr::Kind::Array);
  EXPECT_EQ(P->Globals[2].DeclType->kind(), TypeExpr::Kind::Ptr);
  EXPECT_EQ(P->Globals[2].DeclType->element()->kind(), TypeExpr::Kind::Ptr);
}

TEST(Parser, StructDef) {
  ASTContext Ctx;
  auto P = parseOk(Ctx, "struct Dev { lck : lock; next : ptr Dev; n : int; }");
  ASSERT_EQ(P->Structs.size(), 1u);
  const StructDef &S = P->Structs[0];
  ASSERT_EQ(S.Fields.size(), 3u);
  EXPECT_EQ(Ctx.text(S.Fields[0].first), "lck");
  EXPECT_EQ(S.Fields[1].second->kind(), TypeExpr::Kind::Ptr);
  EXPECT_EQ(Ctx.text(S.Fields[1].second->element()->name()), "Dev");
}

TEST(Parser, FunctionWithParams) {
  ASTContext Ctx;
  auto P = parseOk(Ctx, "fun f(a : int, l : ptr lock) : int { 0 }");
  ASSERT_EQ(P->Funs.size(), 1u);
  const FunDef &F = P->Funs[0];
  ASSERT_EQ(F.Params.size(), 2u);
  EXPECT_FALSE(F.ParamRestrict[0]);
  EXPECT_FALSE(F.ParamRestrict[1]);
  EXPECT_EQ(F.ReturnType->kind(), TypeExpr::Kind::Int);
}

TEST(Parser, RestrictParameter) {
  ASTContext Ctx;
  auto P = parseOk(Ctx, "fun f(restrict l : ptr lock) : int { 0 }");
  ASSERT_EQ(P->Funs.size(), 1u);
  EXPECT_TRUE(P->Funs[0].ParamRestrict[0]);
}

TEST(Parser, LetAndRestrictBindings) {
  ASTContext Ctx;
  const Expr *S = lastStmt(Ctx, "{ let x = new 1 in restrict y = x in *y }");
  ASSERT_NE(S, nullptr);
  const auto *Let = cast<BindExpr>(S);
  EXPECT_EQ(Let->bindKind(), BindExpr::BindKind::Let);
  const auto *Restrict = cast<BindExpr>(Let->body());
  EXPECT_EQ(Restrict->bindKind(), BindExpr::BindKind::Restrict);
  EXPECT_TRUE(isa<DerefExpr>(Restrict->body()));
}

TEST(Parser, ConfineExprParses) {
  ASTContext Ctx;
  const Expr *S = lastStmt(Ctx, "{ confine p in { *p } }");
  ASSERT_NE(S, nullptr);
  const auto *C = cast<ConfineExpr>(S);
  EXPECT_TRUE(isa<VarRefExpr>(C->subject()));
  EXPECT_TRUE(isa<BlockExpr>(C->body()));
}

TEST(Parser, AssignIsRightAssociative) {
  ASTContext Ctx;
  const Expr *S = lastStmt(Ctx, "{ a := b := c }");
  ASSERT_NE(S, nullptr);
  const auto *Outer = cast<AssignExpr>(S);
  EXPECT_TRUE(isa<VarRefExpr>(Outer->target()));
  EXPECT_TRUE(isa<AssignExpr>(Outer->value()));
}

TEST(Parser, PostfixChainsBindTighterThanDeref) {
  ASTContext Ctx;
  // *a[i]->f parses as *((a[i])->f)
  const Expr *S = lastStmt(Ctx, "{ *a[i]->f }");
  ASSERT_NE(S, nullptr);
  const auto *D = cast<DerefExpr>(S);
  const auto *F = cast<FieldAddrExpr>(D->pointer());
  EXPECT_TRUE(isa<IndexExpr>(F->base()));
}

TEST(Parser, ArithmeticPrecedence) {
  ASTContext Ctx;
  // a + b == c parses as (a + b) == c.
  const Expr *S = lastStmt(Ctx, "{ a + b == c }");
  const auto *Cmp = cast<BinOpExpr>(S);
  EXPECT_EQ(Cmp->op(), BinOpExpr::Op::Eq);
  EXPECT_EQ(cast<BinOpExpr>(Cmp->lhs())->op(), BinOpExpr::Op::Add);
}

TEST(Parser, CallWithArguments) {
  ASTContext Ctx;
  const Expr *S = lastStmt(Ctx, "{ g(1, x, h()) }");
  const auto *C = cast<CallExpr>(S);
  EXPECT_EQ(Ctx.text(C->callee()), "g");
  ASSERT_EQ(C->args().size(), 3u);
  EXPECT_TRUE(isa<CallExpr>(C->args()[2]));
}

TEST(Parser, IfThenElseAndWhile) {
  ASTContext Ctx;
  const Expr *S =
      lastStmt(Ctx, "{ if nondet() then 1 else while nondet() do work() }");
  const auto *I = cast<IfExpr>(S);
  EXPECT_TRUE(isa<WhileExpr>(I->elseExpr()));
}

TEST(Parser, CastSyntax) {
  ASTContext Ctx;
  const Expr *S = lastStmt(Ctx, "{ cast<ptr lock>(x) }");
  const auto *C = cast<CastExpr>(S);
  EXPECT_EQ(C->targetType()->kind(), TypeExpr::Kind::Ptr);
  EXPECT_TRUE(isa<VarRefExpr>(C->operand()));
}

TEST(Parser, EmptyBlockAndTrailingSemicolon) {
  ASTContext Ctx;
  const Expr *Body = parseBody(Ctx, "{ }");
  EXPECT_TRUE(cast<BlockExpr>(Body)->stmts().empty());
  const Expr *Body2 = parseBody(Ctx, "{ 1; 2; }");
  EXPECT_EQ(cast<BlockExpr>(Body2)->stmts().size(), 2u);
}

TEST(Parser, NestedBlocks) {
  ASTContext Ctx;
  const Expr *S = lastStmt(Ctx, "{ { { 1 } } }");
  const auto *B1 = cast<BlockExpr>(S);
  const auto *B2 = cast<BlockExpr>(B1->stmts()[0]);
  EXPECT_TRUE(isa<IntLitExpr>(B2->stmts()[0]));
}

TEST(Parser, SyntaxErrorsReturnNullopt) {
  ASTContext Ctx;
  Diagnostics Diags;
  EXPECT_FALSE(parse("fun f( : int { }", Ctx, Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RecoversAtNextDeclaration) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("fun broken( : int { }\nfun ok() : int { 0 }", Ctx, Diags);
  EXPECT_FALSE(P.has_value()); // errors reported...
  EXPECT_TRUE(Diags.hasErrors());
  // ...but more than one diagnostic pass happened (recovery found `fun ok`).
}

TEST(Parser, MissingInIsAnError) {
  ASTContext Ctx;
  Diagnostics Diags;
  EXPECT_FALSE(
      parse("fun f() : int { let x = 1 2 }", Ctx, Diags).has_value());
}

TEST(Parser, FunctionIndicesAreAssigned) {
  ASTContext Ctx;
  auto P = parseOk(Ctx, "fun a() : int { 0 }\nfun b() : int { 1 }");
  EXPECT_EQ(P->Funs[0].Index, 0u);
  EXPECT_EQ(P->Funs[1].Index, 1u);
  EXPECT_EQ(P->findFun(Ctx.intern("b"))->Index, 1u);
}

//===----------------------------------------------------------------------===//
// Printer round-trip: parse(print(parse(S))) produces the same text.
//===----------------------------------------------------------------------===//

class RoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  ASTContext Ctx1;
  Diagnostics Diags1;
  auto P1 = parse(GetParam(), Ctx1, Diags1);
  ASSERT_TRUE(P1.has_value()) << Diags1.render();
  std::string Printed1 = AstPrinter(Ctx1).print(*P1);

  ASTContext Ctx2;
  Diagnostics Diags2;
  auto P2 = parse(Printed1, Ctx2, Diags2);
  ASSERT_TRUE(P2.has_value()) << Diags2.render() << "\n" << Printed1;
  std::string Printed2 = AstPrinter(Ctx2).print(*P2);
  EXPECT_EQ(Printed1, Printed2);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        "var g : lock; fun f() : int { spin_lock(g); spin_unlock(g) }",
        "struct D { lck : lock; n : int; } var d : D;\n"
        "fun f() : int { spin_lock(d->lck); spin_unlock(d->lck) }",
        "var a : array lock;\n"
        "fun f(i : int) : int { spin_lock(a[i]); spin_unlock(a[i]) }",
        "fun f() : int { let x = new 1 in restrict y = x in *y }",
        "fun f(p : ptr lock) : int { confine p in { spin_lock(p) } }",
        "fun f() : int { if nondet() then 1 else 2 }",
        "fun f() : int { while nondet() do work() }",
        "fun f(x : ptr int) : int { cast<ptr lock>(x); 0 }",
        "fun f() : int { 1 + 2 - 3 }",
        "fun f(restrict l : ptr lock, i : int) : int { *l }",
        // Statement-like forms in operand positions must keep their
        // parentheses (round-trip fuzz oracle regressions).
        "fun f() : int { ((if nondet() then 1 else 2) + 3) }",
        "fun f(x : ptr int) : int { ((x := 4) + nondet()) }",
        "fun f() : int { new (let t = 1 in t); 0 }"));

TEST(Parser, DeepExprNestingRejected) {
  ASTContext Ctx;
  Diagnostics Diags;
  std::string Src = "fun f() : int { " + std::string(300, '(') + "1" +
                    std::string(300, ')') + "; }";
  auto P = parse(Src, Ctx, Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_NE(Diags.render().find("nesting too deep"), std::string::npos);
}

TEST(Parser, DeepUnaryChainRejected) {
  ASTContext Ctx;
  Diagnostics Diags;
  std::string Src = "fun f() : int { " + std::string(300, '*') + "x; }";
  auto P = parse(Src, Ctx, Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_NE(Diags.render().find("nesting too deep"), std::string::npos);
}

TEST(Parser, DeepTypeNestingRejected) {
  ASTContext Ctx;
  Diagnostics Diags;
  std::string Src = "var g : ";
  for (int I = 0; I < 300; ++I)
    Src += "ptr ";
  Src += "int;";
  auto P = parse(Src, Ctx, Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_NE(Diags.render().find("nesting too deep"), std::string::npos);
}

TEST(Parser, ModerateNestingAccepted) {
  ASTContext Ctx;
  // Two NestDepth levels per paren (parseExpr + parseUnary); 100 stays
  // comfortably under MaxAstDepth.
  auto P = parseOk(Ctx, "fun f() : int { " + std::string(100, '(') + "1" +
                            std::string(100, ')') + "; }");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Funs.size(), 1u);
}

} // namespace
