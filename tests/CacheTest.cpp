//===- CacheTest.cpp - Persistent result cache tests ----------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Covers the result-cache stack end to end: the content digest and the
// pinned option fingerprint it is built from, the on-disk CacheStore
// (round trip, corruption tolerance, counters), metrics registry
// serialization, the session-level negative cache, and the corpus-level
// promise that cold, warm, and parallel cached runs render byte-identical
// reports.
//
//===----------------------------------------------------------------------===//

#include "cache/CacheStore.h"
#include "core/Session.h"
#include "corpus/Experiment.h"
#include "obs/Metrics.h"
#include "support/Hash.h"
#include "support/Version.h"

#include "gtest/gtest.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace lna;

namespace {

std::string tempDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + Name;
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  return Dir;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Content digests and fingerprints
//===----------------------------------------------------------------------===//

TEST(CacheHash, DigestIsStableAndContentSensitive) {
  ContentDigest A, B;
  A.update("alpha");
  A.update("beta");
  B.update("alpha");
  B.update("beta");
  EXPECT_EQ(A.hex(), B.hex());
  EXPECT_EQ(A.hex().size(), 32u);
  for (char C : A.hex())
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f'));

  ContentDigest Differs;
  Differs.update("alpha");
  Differs.update("betb");
  EXPECT_NE(A.hex(), Differs.hex());

  // Length framing: ("ab","c") and ("a","bc") must not collide.
  ContentDigest Split1, Split2;
  Split1.update("ab");
  Split1.update("c");
  Split2.update("a");
  Split2.update("bc");
  EXPECT_NE(Split1.hex(), Split2.hex());
}

TEST(CacheHash, OptionsFingerprintIsPinned) {
  // The fingerprint format is a compatibility surface: existing cache
  // entries are keyed by it. Extending PipelineOptions requires
  // extending canonicalOptionsFingerprint *and* this expectation.
  PipelineOptions Opts;
  EXPECT_EQ(canonicalOptionsFingerprint(Opts),
            "mode=infer;confines=1;down=1;backwards=0;inline=0;liberal=0;"
            "provenance=0;timeout-ms=0;max-memory=0;max-steps=0;"
            "max-ast-nodes=0;alias=steensgaard;");
}

TEST(CacheHash, OptionsFingerprintSeparatesOptions) {
  PipelineOptions A, B;
  B.Mode = PipelineMode::CheckAnnotations;
  EXPECT_NE(canonicalOptionsFingerprint(A), canonicalOptionsFingerprint(B));
  PipelineOptions C;
  C.Limits.MaxSteps = 12345;
  EXPECT_NE(canonicalOptionsFingerprint(A), canonicalOptionsFingerprint(C));
  PipelineOptions D;
  D.InlineDepth = 2;
  EXPECT_NE(canonicalOptionsFingerprint(A), canonicalOptionsFingerprint(D));
  // A cache directory shared between backends must never serve one
  // backend's reports to the other.
  PipelineOptions E;
  E.AliasBackend = AliasBackendKind::Andersen;
  EXPECT_NE(canonicalOptionsFingerprint(A), canonicalOptionsFingerprint(E));
}

TEST(CacheHash, SessionContentKeyCoversSourceOptionsAndVersion) {
  PipelineOptions Opts;
  std::string K1 = AnalysisSession::contentKey("fun main() { 0 }", Opts);
  std::string K2 = AnalysisSession::contentKey("fun main() { 0 }", Opts);
  EXPECT_EQ(K1, K2);
  EXPECT_EQ(K1.size(), 32u);
  EXPECT_NE(K1, AnalysisSession::contentKey("fun main() { 1 }", Opts));
  PipelineOptions Check;
  Check.Mode = PipelineMode::CheckAnnotations;
  EXPECT_NE(K1, AnalysisSession::contentKey("fun main() { 0 }", Check));
}

//===----------------------------------------------------------------------===//
// CacheStore
//===----------------------------------------------------------------------===//

TEST(CacheStore, RoundTripAndCounters) {
  CacheStore Store(tempDir("lna_cache_rt"));
  ASSERT_TRUE(Store.ok());

  EXPECT_FALSE(Store.load("m-absent").has_value());
  EXPECT_EQ(Store.misses(), 1u);

  std::string Value = "payload with\nnewlines and \0 bytes";
  Value.push_back('\0');
  ASSERT_TRUE(Store.store("m-key1", Value));
  std::optional<std::string> Back = Store.load("m-key1");
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Value);
  EXPECT_EQ(Store.hits(), 1u);
  EXPECT_EQ(Store.stale(), 0u);
  EXPECT_EQ(Store.storeFailures(), 0u);

  // Overwrite wins.
  ASSERT_TRUE(Store.store("m-key1", "second"));
  EXPECT_EQ(Store.load("m-key1"), std::optional<std::string>("second"));
}

TEST(CacheStore, RejectsUnsafeKeys) {
  CacheStore Store(tempDir("lna_cache_keys"));
  ASSERT_TRUE(Store.ok());
  EXPECT_FALSE(Store.store("../escape", "x"));
  EXPECT_FALSE(Store.store("has/slash", "x"));
  EXPECT_FALSE(Store.store("", "x"));
  EXPECT_EQ(Store.storeFailures(), 3u);
  EXPECT_FALSE(Store.load("../escape").has_value());
}

TEST(CacheStore, CorruptEntriesAreStaleNeverFatal) {
  std::string Dir = tempDir("lna_cache_corrupt");
  CacheStore Store(Dir);
  ASSERT_TRUE(Store.ok());
  ASSERT_TRUE(Store.store("m-victim", "the real payload"));

  // Find the entry file and truncate it mid-payload.
  std::string Entry;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    Entry = E.path().string();
  ASSERT_FALSE(Entry.empty());
  std::string Bytes = slurp(Entry);
  ASSERT_GT(Bytes.size(), 4u);
  {
    std::ofstream Out(Entry, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size() - 4));
  }
  EXPECT_FALSE(Store.load("m-victim").has_value());
  EXPECT_EQ(Store.stale(), 1u);

  // Pure garbage is equally a miss.
  {
    std::ofstream Out(Entry, std::ios::binary | std::ios::trunc);
    Out << "not a cache entry at all";
  }
  EXPECT_FALSE(Store.load("m-victim").has_value());
  EXPECT_EQ(Store.stale(), 2u);

  // The slot is still writable afterwards.
  ASSERT_TRUE(Store.store("m-victim", "recovered"));
  EXPECT_EQ(Store.load("m-victim"), std::optional<std::string>("recovered"));
}

TEST(CacheStore, UnusableDirectoryDegradesGracefully) {
  // A path whose parent is a *file* cannot become a directory.
  std::string File = testing::TempDir() + "lna_cache_blocker";
  {
    std::ofstream Out(File);
    Out << "occupied";
  }
  CacheStore Store(File + "/sub");
  EXPECT_FALSE(Store.ok());
  EXPECT_FALSE(Store.store("m-k", "v"));
  EXPECT_FALSE(Store.load("m-k").has_value());
  EXPECT_GE(Store.storeFailures(), 1u);
  std::remove(File.c_str());
}

TEST(CacheStore, SweepsOrphanedTempFilesOnOpen) {
  std::string Dir = tempDir("lna_cache_sweep");
  {
    CacheStore Seed(Dir);
    ASSERT_TRUE(Seed.ok());
    ASSERT_TRUE(Seed.store("m-live", "payload"));
    EXPECT_EQ(Seed.sweptTempFiles(), 0u);
  }
  // A writer that died between the temp write and the rename leaves
  // private unpublished garbage behind; opening the store removes it
  // without touching published entries. Backdate the temps past the
  // sweep age gate -- a freshly written temp is indistinguishable from
  // another process's in-flight store and must survive (see
  // SweepSparesFreshTempFiles).
  std::ofstream(Dir + "/.tmp-m-dead-1") << "torn";
  std::ofstream(Dir + "/.tmp-m-dead-2") << "torn";
  auto Old = std::filesystem::file_time_type::clock::now() -
             std::chrono::seconds(2 * CacheStore::DefaultSweepMinAgeSeconds);
  std::filesystem::last_write_time(Dir + "/.tmp-m-dead-1", Old);
  std::filesystem::last_write_time(Dir + "/.tmp-m-dead-2", Old);
  CacheStore Store(Dir);
  ASSERT_TRUE(Store.ok());
  EXPECT_EQ(Store.sweptTempFiles(), 2u);
  EXPECT_FALSE(std::filesystem::exists(Dir + "/.tmp-m-dead-1"));
  EXPECT_FALSE(std::filesystem::exists(Dir + "/.tmp-m-dead-2"));
  EXPECT_EQ(Store.load("m-live"), std::optional<std::string>("payload"));
}

TEST(CacheStore, SweepSparesFreshTempFiles) {
  // The orphan sweep used to remove *every* .tmp-* on open, racing a
  // concurrent writer: process B opening the directory could delete
  // process A's in-flight temp between A's write and A's rename, so A
  // published nothing (or rename failed) and the entry silently never
  // appeared. A temp younger than the age gate must be left alone.
  std::string Dir = tempDir("lna_cache_sweep_fresh");
  {
    CacheStore Seed(Dir);
    ASSERT_TRUE(Seed.ok());
  }
  std::ofstream(Dir + "/.tmp-m-inflight-7") << "half-written";
  CacheStore Store(Dir);
  ASSERT_TRUE(Store.ok());
  EXPECT_EQ(Store.sweptTempFiles(), 0u);
  EXPECT_TRUE(std::filesystem::exists(Dir + "/.tmp-m-inflight-7"));

  // Age zero keeps the old sweep-everything behavior for tests that
  // need deterministic cleanup.
  CacheStore Eager(Dir, /*SweepMinAgeSeconds=*/0);
  ASSERT_TRUE(Eager.ok());
  EXPECT_EQ(Eager.sweptTempFiles(), 1u);
  EXPECT_FALSE(std::filesystem::exists(Dir + "/.tmp-m-inflight-7"));
}

TEST(CacheStore, PersistentWriteFailureDisablesWritesReadsKeepWorking) {
  std::string Dir = tempDir("lna_cache_rodir");
  {
    CacheStore Seed(Dir);
    ASSERT_TRUE(Seed.ok());
    ASSERT_TRUE(Seed.store("m-seeded", "payload"));
  }
  ASSERT_EQ(::chmod(Dir.c_str(), 0555), 0);

  // Six independent facts, one bit each: the store opens, the first
  // store fails with a persistent errno (EACCES) and disables writes,
  // the second store short-circuits, both are counted, and reads of
  // published entries keep working.
  auto Probe = [&Dir]() -> int {
    CacheStore Store(Dir);
    int Bits = 0;
    if (Store.ok())
      Bits |= 1;
    if (!Store.store("m-first", "v"))
      Bits |= 2;
    if (Store.writesDisabled())
      Bits |= 4;
    if (!Store.store("m-second", "v"))
      Bits |= 8;
    if (Store.storeFailures() == 2)
      Bits |= 16;
    if (Store.load("m-seeded") == std::optional<std::string>("payload"))
      Bits |= 32;
    return Bits;
  };

  int Bits = 0;
  if (::geteuid() == 0) {
    // Permission bits do not bind root; probe from an unprivileged
    // child instead (uid/gid nobody).
    pid_t Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      if (::setgid(65534) != 0 || ::setuid(65534) != 0)
        ::_exit(99);
      ::_exit(Probe());
    }
    int St = 0;
    ASSERT_EQ(::waitpid(Pid, &St, 0), Pid);
    ASSERT_TRUE(WIFEXITED(St));
    if (WEXITSTATUS(St) == 99) {
      ::chmod(Dir.c_str(), 0755);
      GTEST_SKIP() << "cannot drop privileges to probe permission checks";
    }
    Bits = WEXITSTATUS(St);
  } else {
    Bits = Probe();
  }
  EXPECT_EQ(Bits, 63);
  ::chmod(Dir.c_str(), 0755);
}

TEST(CacheStore, LostRenameIsTransientNotDisabling) {
  std::string Dir = tempDir("lna_cache_transient");
  CacheStore Store(Dir);
  ASSERT_TRUE(Store.ok());
  // Occupy the entry path with a non-empty directory: publication's
  // rename fails, but not with a condition that dooms every later
  // store, so writes stay enabled and the temp file is cleaned up.
  std::filesystem::create_directories(Dir + "/m-blocked.lnac/sub");
  EXPECT_FALSE(Store.store("m-blocked", "v"));
  EXPECT_FALSE(Store.writesDisabled());
  EXPECT_EQ(Store.storeFailures(), 1u);
  EXPECT_TRUE(Store.store("m-other", "v"));
  unsigned Temps = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().filename().string().rfind(".tmp-", 0) == 0)
      ++Temps;
  EXPECT_EQ(Temps, 0u);
}

//===----------------------------------------------------------------------===//
// Metrics serialization
//===----------------------------------------------------------------------===//

TEST(CacheMetrics, SerializeRoundTripsCountersAndHistograms) {
  MetricsRegistry R;
  R.addCounter("alpha", 7);
  R.addCounter("name with spaces\n", 42);
  R.recordValue("depth", 1);
  R.recordValue("depth", 100);
  R.recordValue("depth", 1000000);

  MetricsRegistry Back;
  ASSERT_TRUE(Back.deserialize(R.serialize()));
  EXPECT_EQ(Back.renderJSON(), R.renderJSON());
  EXPECT_EQ(Back.renderText(), R.renderText());

  // Round-tripped histograms keep recording identically.
  R.recordValue("depth", 50);
  Back.recordValue("depth", 50);
  EXPECT_EQ(Back.renderJSON(), R.renderJSON());
}

TEST(CacheMetrics, SerializeRoundTripsEmptyRegistry) {
  MetricsRegistry R;
  MetricsRegistry Back;
  Back.addCounter("leftover", 1);
  ASSERT_TRUE(Back.deserialize(R.serialize()));
  EXPECT_TRUE(Back.empty());
  EXPECT_EQ(Back.renderJSON(), R.renderJSON());
}

TEST(CacheMetrics, DeserializeRejectsMalformedBytes) {
  MetricsRegistry R;
  EXPECT_FALSE(R.deserialize(""));
  EXPECT_FALSE(R.deserialize("metrics 2 0 0\n"));
  EXPECT_FALSE(R.deserialize("metrics 1 1 0\nc 5 3\nab")); // short name
  MetricsRegistry Valid;
  Valid.addCounter("x", 1);
  std::string Bytes = Valid.serialize();
  EXPECT_TRUE(R.deserialize(Bytes));
  Bytes += "trailing";
  EXPECT_FALSE(R.deserialize(Bytes));
  EXPECT_TRUE(R.empty()); // failed deserialize leaves nothing behind
}

//===----------------------------------------------------------------------===//
// Session-level negative cache
//===----------------------------------------------------------------------===//

TEST(CacheSession, ParseFailureReplaysWithoutReparsing) {
  CacheStore Store(tempDir("lna_cache_session"));
  ASSERT_TRUE(Store.ok());
  PipelineOptions Opts;
  Opts.Cache = &Store;
  const char *Bad = "fun broken( {";

  AnalysisSession Cold(Opts);
  EXPECT_FALSE(Cold.run(Bad));
  ASSERT_TRUE(Cold.failure());
  EXPECT_EQ(Cold.failure()->Kind, FailureKind::ParseError);
  EXPECT_NE(Cold.stats().findPhase("parse"), nullptr);
  EXPECT_EQ(Store.hits(), 0u);

  AnalysisSession Warm(Opts);
  EXPECT_FALSE(Warm.run(Bad));
  ASSERT_TRUE(Warm.failure());
  EXPECT_EQ(Warm.failure()->Kind, FailureKind::ParseError);
  EXPECT_EQ(Warm.failure()->Phase, Cold.failure()->Phase);
  EXPECT_EQ(Warm.diags().render(), Cold.diags().render());
  // The replay never entered the pipeline: no parse phase ran.
  EXPECT_EQ(Warm.stats().findPhase("parse"), nullptr);
  EXPECT_EQ(Store.hits(), 1u);
}

TEST(CacheSession, TypeErrorsReplayDiagnosticsVerbatim) {
  CacheStore Store(tempDir("lna_cache_session_type"));
  ASSERT_TRUE(Store.ok());
  PipelineOptions Opts;
  Opts.Cache = &Store;
  const char *Bad = "fun f() : int { *1 }";

  AnalysisSession Cold(Opts);
  EXPECT_FALSE(Cold.run(Bad));
  AnalysisSession Warm(Opts);
  EXPECT_FALSE(Warm.run(Bad));
  ASSERT_TRUE(Warm.failure());
  EXPECT_EQ(Warm.failure()->Kind, FailureKind::TypeError);
  EXPECT_EQ(Warm.diags().render(), Cold.diags().render());
  EXPECT_EQ(Store.hits(), 1u);
}

TEST(CacheSession, SuccessfulRunsAreNotCachedBySession) {
  // The session cache is a negative cache: successes carry a full
  // PipelineResult that cannot (and need not) be serialized here.
  CacheStore Store(tempDir("lna_cache_session_ok"));
  ASSERT_TRUE(Store.ok());
  PipelineOptions Opts;
  Opts.Cache = &Store;
  const char *Good = "fun main() : int { 0 }";

  AnalysisSession First(Opts);
  EXPECT_TRUE(First.run(Good));
  AnalysisSession Second(Opts);
  EXPECT_TRUE(Second.run(Good));
  EXPECT_EQ(Store.hits(), 0u);
  // Both runs really analyzed.
  EXPECT_NE(Second.stats().findPhase("parse"), nullptr);
}

//===----------------------------------------------------------------------===//
// Corpus-level cache
//===----------------------------------------------------------------------===//

namespace {

ExperimentOptions cachedOptions(CacheStore &Store) {
  ExperimentOptions Opts;
  Opts.Cache = &Store;
  Opts.CollectMetrics = true;
  return Opts;
}

std::vector<ModuleSpec> corpusSlice(size_t N) {
  std::vector<ModuleSpec> Corpus = generateCorpus();
  Corpus.resize(N);
  return Corpus;
}

} // namespace

TEST(CacheCorpus, WarmRunsRenderByteIdenticalReports) {
  std::vector<ModuleSpec> Corpus = corpusSlice(24);
  CacheStore Store(tempDir("lna_cache_corpus"));
  ASSERT_TRUE(Store.ok());

  CorpusSummary Cold = runCorpusExperiment(Corpus, cachedOptions(Store));
  uint64_t ColdHits = Store.hits();
  CorpusSummary Warm = runCorpusExperiment(Corpus, cachedOptions(Store));
  EXPECT_EQ(Store.hits() - ColdHits, 24u);

  EXPECT_EQ(renderCorpusReport(Cold), renderCorpusReport(Warm));
  EXPECT_EQ(corpusReportJSON(Cold, false), corpusReportJSON(Warm, false));
  EXPECT_EQ(Cold.Metrics.renderJSON(), Warm.Metrics.renderJSON());

  // Parallel warm run: same bytes again.
  ExperimentOptions Par = cachedOptions(Store);
  Par.Jobs = 3;
  CorpusSummary WarmPar = runCorpusExperiment(Corpus, Par);
  EXPECT_EQ(renderCorpusReport(Cold), renderCorpusReport(WarmPar));
  EXPECT_EQ(corpusReportJSON(Cold, false), corpusReportJSON(WarmPar, false));
  EXPECT_EQ(Cold.Metrics.renderJSON(), WarmPar.Metrics.renderJSON());
}

TEST(CacheCorpus, CorruptEntryIsReanalyzedCorrectly) {
  std::vector<ModuleSpec> Corpus = corpusSlice(6);
  std::string Dir = tempDir("lna_cache_corpus_corrupt");
  CacheStore Store(Dir);
  ASSERT_TRUE(Store.ok());
  CorpusSummary Cold = runCorpusExperiment(Corpus, cachedOptions(Store));

  // Vandalize every stored entry a different way.
  unsigned I = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    std::string Bytes = slurp(E.path().string());
    std::ofstream Out(E.path(), std::ios::binary | std::ios::trunc);
    if (I++ % 2 == 0)
      Out << "garbage";
    else
      Out.write(Bytes.data(),
                static_cast<std::streamsize>(Bytes.size() / 2));
  }

  CorpusSummary Warm = runCorpusExperiment(Corpus, cachedOptions(Store));
  EXPECT_EQ(renderCorpusReport(Cold), renderCorpusReport(Warm));
  EXPECT_EQ(corpusReportJSON(Cold, false), corpusReportJSON(Warm, false));
  EXPECT_EQ(Cold.Metrics.renderJSON(), Warm.Metrics.renderJSON());
  EXPECT_GT(Store.stale(), 0u);
}

TEST(CacheCorpus, MutatedModuleMissesItsOldEntry) {
  std::vector<ModuleSpec> Corpus = corpusSlice(4);
  CacheStore Store(tempDir("lna_cache_corpus_mut"));
  ASSERT_TRUE(Store.ok());
  (void)runCorpusExperiment(Corpus, cachedOptions(Store));
  uint64_t Hits0 = Store.hits();

  std::vector<ModuleSpec> Mutated = Corpus;
  Mutated[0].Source =
      "var mutated : int;\nfun mutated_clash() { mutated(1) }\n" +
      Mutated[0].Source;
  CorpusSummary Warm = runCorpusExperiment(Mutated, cachedOptions(Store));
  // The three untouched modules hit; the mutated one re-analyzed and
  // matches a fresh run of the mutated corpus.
  EXPECT_EQ(Store.hits() - Hits0, 3u);
  CorpusSummary Fresh = runCorpusExperiment(Mutated, ExperimentOptions{});
  EXPECT_EQ(renderCorpusReport(Warm), renderCorpusReport(Fresh));
}

TEST(CacheCorpus, FaultInjectedRunsBypassTheCache) {
  std::vector<ModuleSpec> Corpus = corpusSlice(3);
  CacheStore Store(tempDir("lna_cache_corpus_faults"));
  ASSERT_TRUE(Store.ok());
  ExperimentOptions Opts = cachedOptions(Store);
  Opts.Faults = [](uint64_t) { return nullptr; };
  (void)runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(Store.hits(), 0u);
  EXPECT_EQ(Store.misses(), 0u);
  EXPECT_TRUE(std::filesystem::is_empty(Store.directory()));
}

TEST(CacheCorpus, DigestMatchesCheckpointDigest) {
  // One digest, two consumers: the "m-" cache key and the checkpoint
  // journal row must agree on what "unchanged" means.
  std::vector<ModuleSpec> Corpus = corpusSlice(1);
  ExperimentOptions Opts;
  std::string D = moduleContentDigest(Corpus[0], Opts);
  EXPECT_EQ(D.size(), 32u);
  EXPECT_EQ(D, moduleContentDigest(Corpus[0], Opts));
  ModuleSpec Changed = Corpus[0];
  Changed.Source += "\n";
  EXPECT_NE(D, moduleContentDigest(Changed, Opts));
}
