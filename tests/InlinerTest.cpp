//===- InlinerTest.cpp - Bounded inlining tests ---------------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "core/Inliner.h"
#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/ExprUtils.h"
#include "lang/Parser.h"
#include "qual/LockAnalysis.h"
#include "semantics/Interp.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct Inlined {
  ASTContext Ctx;
  Diagnostics Diags;
  std::optional<Program> Prog;
  Program Out;

  void run(std::string_view Src, unsigned Depth) {
    Prog = parse(Src, Ctx, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.render();
    Out = inlineCalls(Ctx, *Prog, Depth);
  }

  bool bodyContainsCallTo(const char *Fun, const char *Callee) {
    const FunDef *F = Out.findFun(Ctx.intern(Fun));
    EXPECT_NE(F, nullptr);
    return F && containsCallTo(F->Body, Ctx.intern(Callee));
  }
};

TEST(Inliner, DepthZeroIsIdentity) {
  Inlined I;
  I.run("fun g() : int { 1 }\nfun f() : int { g() }", 0);
  EXPECT_TRUE(I.bodyContainsCallTo("f", "g"));
}

TEST(Inliner, SimpleCallIsInlined) {
  Inlined I;
  I.run("fun g(x : int) : int { x + 1 }\nfun f() : int { g(41) }", 1);
  EXPECT_FALSE(I.bodyContainsCallTo("f", "g"));
  // The call became a let binding a fresh name.
  const FunDef *F = I.Out.findFun(I.Ctx.intern("f"));
  const auto *B = cast<BlockExpr>(F->Body);
  EXPECT_TRUE(isa<BindExpr>(B->stmts()[0]));
}

TEST(Inliner, RecursiveCallsAreNotInlined) {
  Inlined I;
  I.run("fun r(n : int) : int { if n == 0 then 0 else r(n - 1) }\n"
        "fun f() : int { r(3) }",
        3);
  // The call to r survives somewhere (inside the inlined copy or as-is).
  EXPECT_TRUE(I.bodyContainsCallTo("f", "r"));
}

TEST(Inliner, MutualRecursionIsNotInlined) {
  Inlined I;
  I.run("fun a(n : int) : int { if n == 0 then 0 else b(n - 1) }\n"
        "fun b(n : int) : int { a(n) }\n"
        "fun f() : int { a(3) }",
        2);
  const FunDef *F = I.Out.findFun(I.Ctx.intern("f"));
  // a can reach itself via b: never inlined.
  EXPECT_TRUE(containsCallTo(F->Body, I.Ctx.intern("a")));
}

TEST(Inliner, DepthBoundsNestedInlining) {
  Inlined I;
  I.run("fun h() : int { 7 }\n"
        "fun g() : int { h() }\n"
        "fun f() : int { g() }",
        1);
  // Depth 1: g inlined into f, but h's call inside the copy survives.
  EXPECT_FALSE(I.bodyContainsCallTo("f", "g"));
  EXPECT_TRUE(I.bodyContainsCallTo("f", "h"));
}

TEST(Inliner, DepthTwoInlinesTransitively) {
  Inlined I;
  I.run("fun h() : int { 7 }\n"
        "fun g() : int { h() }\n"
        "fun f() : int { g() }",
        2);
  EXPECT_FALSE(I.bodyContainsCallTo("f", "g"));
  EXPECT_FALSE(I.bodyContainsCallTo("f", "h"));
}

TEST(Inliner, NoCaptureOfCallerVariables) {
  // g's first parameter is named q; the second argument mentions the
  // *caller's* q. Fresh naming must keep them apart; evaluation proves it.
  const char *Src = "fun g(q : int, r : int) : int { q - r }\n"
                    "fun main() : int {\n"
                    "  let q = 10 in g(1, q) }"; // 1 - 10 = -9
  for (unsigned Depth : {0u, 1u}) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    ASSERT_TRUE(P.has_value());
    Program Out = inlineCalls(Ctx, *P, Depth);
    RunResult R = runProgram(Ctx, Out, {});
    EXPECT_EQ(R.Status, RunStatus::Value);
    EXPECT_EQ(R.Value, -9) << "depth " << Depth;
  }
}

TEST(Inliner, RestrictParamsBecomeRestrictBindings) {
  Inlined I;
  I.run("fun g(restrict l : ptr lock) : int { spin_lock(l);"
        " spin_unlock(l) }\n"
        "var gl : lock;\n"
        "fun f() : int { g(gl) }",
        1);
  const FunDef *F = I.Out.findFun(I.Ctx.intern("f"));
  // Find a restrict bind in the inlined body.
  bool FoundRestrict = false;
  std::vector<const Expr *> Stack = {F->Body};
  while (!Stack.empty()) {
    const Expr *E = Stack.back();
    Stack.pop_back();
    if (const auto *B = dyn_cast<BindExpr>(E))
      FoundRestrict |= B->isRestrict();
    forEachChild(E, [&Stack](const Expr *C) { Stack.push_back(C); });
  }
  EXPECT_TRUE(FoundRestrict);
}

TEST(Inliner, EvaluationIsPreserved) {
  const char *Src = "fun add(a : int, b : int) : int { a + b }\n"
                    "fun twice(x : int) : int { add(x, x) }\n"
                    "fun main() : int { twice(21) }";
  for (unsigned Depth : {0u, 1u, 2u, 3u}) {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    ASSERT_TRUE(P.has_value());
    Program Out = inlineCalls(Ctx, *P, Depth);
    RunResult R = runProgram(Ctx, Out, {});
    EXPECT_EQ(R.Status, RunStatus::Value);
    EXPECT_EQ(R.Value, 42) << "depth " << Depth;
  }
}

TEST(Inliner, InlinedProgramStillTypeChecks) {
  const char *Src = "var locks : array lock;\n"
                    "fun dwl(l : ptr lock) : int {\n"
                    "  spin_lock(l); work(); spin_unlock(l) }\n"
                    "fun f(i : int) : int { dwl(locks[i]) }";
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  Opts.InlineDepth = 1;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  EXPECT_TRUE(R.has_value()) << Diags.render();
}

//===----------------------------------------------------------------------===//
// The location-polymorphism effect (the paper's Section 7 remark): a
// helper locking two different singleton globals is weak monomorphically
// (the parameter merges the two cells) but strong with per-call-site
// locations.
//===----------------------------------------------------------------------===//

uint32_t lockErrors(const char *Src, unsigned InlineDepth) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations; // plain analysis, no confine
  Opts.InlineDepth = InlineDepth;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  EXPECT_TRUE(R.has_value()) << Diags.render();
  return analyzeLocks(Ctx, *R, {}).numErrors();
}

TEST(Inliner, PolymorphismRecoversStrongUpdatesOnSingletons) {
  const char *Src = "var g1 : lock;\nvar g2 : lock;\n"
                    "fun with(l : ptr lock) : int {\n"
                    "  spin_lock(l); work(); spin_unlock(l) }\n"
                    "fun e1() : int { with(g1) }\n"
                    "fun e2() : int { with(g2) }";
  // Monomorphic: the parameter merges g1 and g2 (nonlinear): weak
  // updates, unverifiable unlock.
  EXPECT_GT(lockErrors(Src, 0), 0u);
  // Per-call-site locations: each copy touches one linear cell.
  EXPECT_EQ(lockErrors(Src, 1), 0u);
}

TEST(Inliner, PolymorphismDoesNotHelpArrays) {
  // Array elements stay nonlinear regardless of context sensitivity;
  // only restrict/confine help (the paper's core point).
  const char *Src = "var a : array lock;\n"
                    "fun with(l : ptr lock) : int {\n"
                    "  spin_lock(l); work(); spin_unlock(l) }\n"
                    "fun e(i : int) : int { with(a[i]) }";
  EXPECT_GT(lockErrors(Src, 0), 0u);
  EXPECT_GT(lockErrors(Src, 1), 0u);
}

} // namespace
