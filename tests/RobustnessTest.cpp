//===- RobustnessTest.cpp - Resource governance & fault isolation ---------===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The robustness suite: resource budgets (support/Budget.h), typed abort
// containment at session phase boundaries (core/Session.h), the seeded
// fault injector (fuzz/FaultInjector.h), and the fault-isolated corpus
// runner with retry and checkpoint resume (corpus/Experiment.h).
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "corpus/Experiment.h"
#include "fuzz/FaultInjector.h"
#include "fuzz/Fuzzer.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

using namespace lna;

namespace {

/// A small clean program exercising every pipeline phase.
const char *DemoSource = R"(
var locks : array lock;
var g : ptr int;
fun f(i : int) : int {
  spin_lock(locks[i]);
  work();
  spin_unlock(locks[i]);
  let p = new 1 in *p;
  let q = g in *q;
  let a = new 2 in
  let b = new 3 in
  let m = if i then a else b in *m
}
)";

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

//===----------------------------------------------------------------------===//
// ResourceBudget
//===----------------------------------------------------------------------===//

TEST(Budget, StepCapIsExact) {
  ResourceBudget B;
  ResourceLimits L;
  L.MaxSteps = 10;
  B.arm(L);
  B.step(5);
  B.step(5); // exactly at the cap: fine
  try {
    B.step(1);
    FAIL() << "expected AnalysisAbort";
  } catch (const AnalysisAbort &A) {
    EXPECT_EQ(A.kind(), FailureKind::StepCap);
    EXPECT_NE(std::string(A.what()).find("10"), std::string::npos);
  }
}

TEST(Budget, DisarmedBudgetIgnoresEverything) {
  ResourceBudget B;
  B.arm(ResourceLimits{}); // all-zero = unlimited
  EXPECT_FALSE(B.armed());
  B.step(1000000);
  B.noteAstNode();
  B.checkNow();
}

TEST(Budget, ExpiredDeadlineThrowsOnCheckNow) {
  ResourceBudget B;
  ResourceLimits L;
  L.TimeoutMillis = 1;
  B.arm(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_THROW(B.checkNow(), AnalysisAbort);
}

TEST(Budget, AstNodeCapReportsMemoryKind) {
  ResourceBudget B;
  ResourceLimits L;
  L.MaxAstNodes = 3;
  B.arm(L);
  B.noteAstNode();
  B.noteAstNode();
  B.noteAstNode();
  try {
    B.noteAstNode();
    FAIL() << "expected AnalysisAbort";
  } catch (const AnalysisAbort &A) {
    EXPECT_EQ(A.kind(), FailureKind::MemoryCap);
  }
}

TEST(Budget, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(currentBudget(), nullptr);
  ResourceBudget Outer, Inner;
  {
    BudgetScope S1(Outer);
    EXPECT_EQ(currentBudget(), &Outer);
    {
      BudgetScope S2(Inner);
      EXPECT_EQ(currentBudget(), &Inner);
    }
    EXPECT_EQ(currentBudget(), &Outer);
  }
  EXPECT_EQ(currentBudget(), nullptr);
  budgetStep(1000); // no budget installed: must be a no-op
}

TEST(Budget, FailureKindNamesRoundTrip) {
  EXPECT_STREQ(failureKindName(FailureKind::Timeout), "timeout");
  EXPECT_STREQ(failureKindName(FailureKind::MemoryCap), "memory-cap");
  EXPECT_STREQ(failureKindName(FailureKind::StepCap), "step-cap");
  EXPECT_STREQ(failureKindName(FailureKind::ParseError), "parse-error");
  EXPECT_STREQ(failureKindName(FailureKind::TypeError), "type-error");
  EXPECT_STREQ(failureKindName(FailureKind::InternalError),
               "internal-error");
}

//===----------------------------------------------------------------------===//
// Session phase-boundary containment
//===----------------------------------------------------------------------===//

TEST(SessionGovernance, StepCapAbortsWithStructuredFailure) {
  PipelineOptions Opts;
  Opts.Limits.MaxSteps = 1;
  AnalysisSession S(Opts);
  EXPECT_FALSE(S.run(DemoSource));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::StepCap);
  EXPECT_FALSE(S.failure()->Phase.empty());
  EXPECT_FALSE(S.hasResult());
  // Stats up to the failing phase survive: parse ran to completion.
  EXPECT_NE(S.stats().renderText().find("parse"), std::string::npos);
}

TEST(SessionGovernance, AstNodeCapAbortsDuringParse) {
  PipelineOptions Opts;
  Opts.Limits.MaxAstNodes = 3;
  AnalysisSession S(Opts);
  EXPECT_FALSE(S.run(DemoSource));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::MemoryCap);
  EXPECT_EQ(S.failure()->Phase, "parse");
}

TEST(SessionGovernance, ArenaByteCapAbortsWithMemoryKind) {
  PipelineOptions Opts;
  Opts.Limits.MaxMemoryBytes = 256; // a few AST nodes at most
  AnalysisSession S(Opts);
  EXPECT_FALSE(S.run(DemoSource));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::MemoryCap);
}

TEST(SessionGovernance, ParseErrorsAreCategorized) {
  AnalysisSession S{PipelineOptions{}};
  EXPECT_FALSE(S.run("fun f( ="));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::ParseError);
  EXPECT_EQ(S.failure()->Phase, "parse");
}

TEST(SessionGovernance, TypeErrorsAreCategorized) {
  AnalysisSession S{PipelineOptions{}};
  EXPECT_FALSE(S.run("fun main() : int { *3 }"));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::TypeError);
  EXPECT_EQ(S.failure()->Phase, "typing");
}

TEST(SessionGovernance, SuccessClearsPriorFailure) {
  PipelineOptions Limited;
  Limited.Limits.MaxSteps = 1;
  AnalysisSession S1(Limited);
  EXPECT_FALSE(S1.run(DemoSource));
  EXPECT_TRUE(S1.failure().has_value());

  AnalysisSession S2{PipelineOptions{}};
  EXPECT_TRUE(S2.run(DemoSource));
  EXPECT_FALSE(S2.failure().has_value());
  EXPECT_TRUE(S2.hasResult());
}

TEST(SessionGovernance, InjectedInternalErrorIsContained) {
  FaultSpec Spec;
  Spec.InternalPpm = 1000000; // certain at the first phase boundary
  FaultInjector Injector(Spec);
  FaultHookScope Hook(Injector);
  AnalysisSession S{PipelineOptions{}};
  EXPECT_FALSE(S.run(DemoSource));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::InternalError);
  EXPECT_EQ(S.failure()->Phase, "parse");
  EXPECT_NE(S.failure()->Message.find("injected fault"), std::string::npos);
}

TEST(SessionGovernance, InjectedBadAllocBecomesMemoryCap) {
  FaultSpec Spec;
  Spec.BadAllocPpm = 1000000; // certain at the first arena allocation
  FaultInjector Injector(Spec);
  FaultHookScope Hook(Injector);
  AnalysisSession S{PipelineOptions{}};
  EXPECT_FALSE(S.run(DemoSource));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::MemoryCap);
  EXPECT_GT(Injector.injectedBadAllocs(), 0u);
}

TEST(SessionGovernance, InjectedDelayTripsTightDeadline) {
  FaultSpec Spec;
  Spec.DelayPpm = 1000000;
  Spec.DelayMillis = 10;
  FaultInjector Injector(Spec);
  FaultHookScope Hook(Injector);
  PipelineOptions Opts;
  Opts.Limits.TimeoutMillis = 1;
  AnalysisSession S(Opts);
  EXPECT_FALSE(S.run(DemoSource));
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Kind, FailureKind::Timeout);
  EXPECT_GT(Injector.injectedDelays(), 0u);
}

TEST(SessionGovernance, LockPhaseAbortLandsInSessionFailure) {
  AnalysisSession S{PipelineOptions{}};
  ASSERT_TRUE(S.run(DemoSource));
  EXPECT_FALSE(S.failure().has_value());
  // Inject only for the lock phase: the analysis ran clean, so the
  // fault fires at the lock phase's own boundary and must land in the
  // session failure rather than escaping analyzeLocks().
  FaultSpec Spec;
  Spec.InternalPpm = 1000000;
  FaultInjector Injector(Spec);
  FaultHookScope Hook(Injector);
  analyzeLocks(S, {});
  ASSERT_TRUE(S.failure().has_value());
  EXPECT_EQ(S.failure()->Phase, "lock-analysis");
  EXPECT_EQ(S.failure()->Kind, FailureKind::InternalError);
}

//===----------------------------------------------------------------------===//
// Fault spec parsing
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesFullSpec) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(parseFaultSpec(
      "seed=42,bad-alloc=100,internal=2000,delay=30,delay-ms=7", S, Error))
      << Error;
  EXPECT_EQ(S.Seed, 42u);
  EXPECT_EQ(S.BadAllocPpm, 100u);
  EXPECT_EQ(S.InternalPpm, 2000u);
  EXPECT_EQ(S.DelayPpm, 30u);
  EXPECT_EQ(S.DelayMillis, 7u);
  EXPECT_TRUE(S.any());
}

TEST(FaultSpec, DefaultsAreInert) {
  FaultSpec S;
  std::string Error;
  ASSERT_TRUE(parseFaultSpec("seed=9", S, Error));
  EXPECT_FALSE(S.any());
}

TEST(FaultSpec, RejectsMalformedInput) {
  FaultSpec S;
  std::string Error;
  EXPECT_FALSE(parseFaultSpec("bad-alloc", S, Error));
  EXPECT_FALSE(parseFaultSpec("bad-alloc=1x", S, Error));
  EXPECT_FALSE(parseFaultSpec("unknown-key=1", S, Error));
  EXPECT_FALSE(parseFaultSpec("internal=1000001", S, Error)); // > 1e6 ppm
  EXPECT_NE(Error.find("1000000"), std::string::npos);
}

TEST(FaultSpec, InjectorSequenceIsSeedDeterministic) {
  FaultSpec Spec;
  Spec.Seed = 123;
  Spec.BadAllocPpm = 500000;
  auto Fire = [&](uint64_t Seed) {
    FaultSpec S = Spec;
    S.Seed = Seed;
    FaultInjector Inj(S);
    std::string Pattern;
    for (int I = 0; I < 64; ++I) {
      try {
        Inj.at("alloc:arena");
        Pattern += '.';
      } catch (const std::bad_alloc &) {
        Pattern += 'X';
      }
    }
    return Pattern;
  };
  EXPECT_EQ(Fire(123), Fire(123));
  EXPECT_NE(Fire(123), Fire(124));
}

TEST(FaultSpec, InternalFaultsNeverFireAtAllocSites) {
  FaultSpec Spec;
  Spec.InternalPpm = 1000000;
  FaultInjector Inj(Spec);
  for (int I = 0; I < 1000; ++I)
    Inj.at("alloc:arena"); // must not throw
  EXPECT_THROW(Inj.at("typing"), AnalysisAbort);
}

//===----------------------------------------------------------------------===//
// Fault-isolated corpus runs
//===----------------------------------------------------------------------===//

ExperimentOptions faultedOptions(uint32_t InternalPpm, uint32_t BadAllocPpm) {
  ExperimentOptions Opts;
  Opts.FaultSeed = 7;
  Opts.Faults = [=](uint64_t Seed) {
    FaultSpec Spec;
    Spec.Seed = Seed;
    Spec.InternalPpm = InternalPpm;
    Spec.BadAllocPpm = BadAllocPpm;
    return std::make_unique<FaultInjector>(Spec);
  };
  return Opts;
}

std::vector<ModuleSpec> corpusSlice(size_t N) {
  std::vector<ModuleSpec> Corpus = generateCorpus();
  Corpus.resize(N);
  return Corpus;
}

TEST(CorpusRobustness, InjectedFailuresAreCategorizedNotFatal) {
  std::vector<ModuleSpec> Corpus = corpusSlice(24);
  ExperimentOptions Opts = faultedOptions(/*InternalPpm=*/200000,
                                          /*BadAllocPpm=*/100);
  Opts.RetryTransient = false;
  CorpusSummary S = runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(S.TotalModules, 24u);
  EXPECT_GT(S.FailedModules, 0u);
  uint64_t ByKind = 0;
  for (unsigned K = 0; K < NumFailureKinds; ++K)
    ByKind += S.FailuresByKind[K];
  EXPECT_EQ(ByKind, S.FailedModules);
  EXPECT_EQ(S.FailuresByKind[static_cast<unsigned>(FailureKind::None)], 0u);
  for (const ModuleResult &M : S.Modules)
    if (!M.Ok) {
      EXPECT_NE(M.Failure, FailureKind::None) << M.Name;
    }
}

TEST(CorpusRobustness, FaultedRunIsByteIdenticalAcrossJobs) {
  std::vector<ModuleSpec> Corpus = corpusSlice(32);
  ExperimentOptions Opts = faultedOptions(/*InternalPpm=*/50000,
                                          /*BadAllocPpm=*/50);
  CorpusSummary S1 = runCorpusExperiment(Corpus, Opts);
  Opts.Jobs = 4;
  CorpusSummary S4 = runCorpusExperiment(Corpus, Opts);
  EXPECT_GT(S1.FailedModules, 0u); // the run must actually exercise faults
  EXPECT_EQ(renderCorpusReport(S1), renderCorpusReport(S4));
  EXPECT_EQ(corpusReportJSON(S1, /*IncludeTimings=*/false),
            corpusReportJSON(S4, /*IncludeTimings=*/false));
}

TEST(CorpusRobustness, TransientFailuresRetryAndRecover) {
  std::vector<ModuleSpec> Corpus = corpusSlice(40);
  ExperimentOptions Opts = faultedOptions(/*InternalPpm=*/30000,
                                          /*BadAllocPpm=*/0);
  CorpusSummary S = runCorpusExperiment(Corpus, Opts);
  EXPECT_GT(S.RetriedModules, 0u);
  EXPECT_GT(S.RecoveredOnRetry, 0u);
  EXPECT_LE(S.RecoveredOnRetry, S.RetriedModules);
  // A retried module that still failed must have failed on the retry's
  // own draws too; either way its row is categorized.
  for (const ModuleResult &M : S.Modules)
    if (M.Retried && !M.Ok) {
      EXPECT_EQ(M.Failure, FailureKind::InternalError) << M.Name;
    }
}

namespace {

/// Fails at the first effect-constraints phase boundary when armed:
/// deep enough into the pipeline that the aborted attempt has already
/// accumulated parse/typing stats, metrics, and trace spans -- exactly
/// the state a retry must discard.
class FailFirstAttempt final : public FaultHook {
public:
  explicit FailFirstAttempt(bool Fire) : Fire(Fire) {}
  void at(const char *Site) override {
    if (Fire && std::string_view(Site) == "effect-constraints")
      throw AnalysisAbort(FailureKind::InternalError,
                          "synthetic first-attempt fault");
  }

private:
  bool Fire;
};

/// Options whose fault hook fires on exactly the first attempt of every
/// module in \p Corpus: every module retries once and recovers.
ExperimentOptions failFirstOptions(const std::vector<ModuleSpec> &Corpus) {
  ExperimentOptions Opts;
  Opts.FaultSeed = 11;
  std::set<uint64_t> FirstAttemptSeeds;
  for (const ModuleSpec &M : Corpus)
    FirstAttemptSeeds.insert(moduleFaultSeed(Opts.FaultSeed, M.Name, 0));
  Opts.Faults = [FirstAttemptSeeds](uint64_t Seed) {
    return std::make_unique<FailFirstAttempt>(FirstAttemptSeeds.count(Seed) !=
                                              0);
  };
  return Opts;
}

} // namespace

TEST(CorpusRobustness, RetriedModuleStatsCountOnlyTheKeptAttempt) {
  // Regression: the aborted first attempt's phase counters and wall-time
  // samples must not leak into the aggregates -- a run where every
  // module retried once reports the same deterministic stats as a clean
  // run.
  std::vector<ModuleSpec> Corpus = corpusSlice(6);
  CorpusSummary Clean = runCorpusExperiment(Corpus, ExperimentOptions{});
  CorpusSummary Retried =
      runCorpusExperiment(Corpus, failFirstOptions(Corpus));
  ASSERT_EQ(Retried.RetriedModules, 6u);
  ASSERT_EQ(Retried.RecoveredOnRetry, 6u);
  EXPECT_EQ(Retried.FailedModules, 0u);
  EXPECT_EQ(Retried.Stats.counter("parse", "ast-nodes"),
            Clean.Stats.counter("parse", "ast-nodes"));
  EXPECT_EQ(Retried.Stats.counter("typing", "locations"),
            Clean.Stats.counter("typing", "locations"));
  EXPECT_EQ(Retried.Stats.counter("typing", "unifications"),
            Clean.Stats.counter("typing", "unifications"));
  // The per-phase wall-time sample streams must be structurally the
  // same: one sample per module per phase, kept attempt only.
  ASSERT_EQ(Retried.PhaseTimes.size(), Clean.PhaseTimes.size());
  for (size_t I = 0; I < Clean.PhaseTimes.size(); ++I) {
    EXPECT_EQ(Retried.PhaseTimes[I].first, Clean.PhaseTimes[I].first);
    EXPECT_EQ(Retried.PhaseTimes[I].second.size(),
              Clean.PhaseTimes[I].second.size());
  }
}

TEST(CorpusRobustness, RetryDisabledReportsTransientsDirectly) {
  std::vector<ModuleSpec> Corpus = corpusSlice(24);
  ExperimentOptions Opts = faultedOptions(/*InternalPpm=*/100000,
                                          /*BadAllocPpm=*/0);
  Opts.RetryTransient = false;
  CorpusSummary S = runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(S.RetriedModules, 0u);
  EXPECT_GT(
      S.FailuresByKind[static_cast<unsigned>(FailureKind::InternalError)],
      0u);
}

TEST(CorpusRobustness, UnloadableModulesBecomeParseErrorRows) {
  std::vector<ModuleSpec> Corpus;
  Corpus.push_back(loadModuleFile("/nonexistent/module.lna"));
  ModuleSpec Empty;
  Empty.Name = "empty";
  Empty.Category = ModuleCategory::External;
  Empty.LoadError = "empty module file";
  Corpus.push_back(Empty);
  CorpusSummary S = runCorpusExperiment(Corpus, ExperimentOptions{});
  EXPECT_EQ(S.FailedModules, 2u);
  EXPECT_EQ(S.FailuresByKind[static_cast<unsigned>(FailureKind::ParseError)],
            2u);
  EXPECT_EQ(S.Modules[0].Category, ModuleCategory::External);
}

//===----------------------------------------------------------------------===//
// Checkpoint journaling and resume
//===----------------------------------------------------------------------===//

TEST(CorpusRobustness, CheckpointResumeMatchesUninterruptedRun) {
  std::string Journal = tempPath("lna_ckpt_resume.txt");
  std::remove(Journal.c_str());

  std::vector<ModuleSpec> Full = corpusSlice(20);
  std::vector<ModuleSpec> Half(Full.begin(), Full.begin() + 10);

  ExperimentOptions Opts = faultedOptions(/*InternalPpm=*/50000,
                                          /*BadAllocPpm=*/50);
  Opts.CheckpointFile = Journal;

  // "Killed" run: only half the corpus completes and is journaled.
  CorpusSummary Partial = runCorpusExperiment(Half, Opts);
  EXPECT_EQ(Partial.ResumedModules, 0u);

  // Resume over the full corpus: the first half restores from the
  // journal, and the final report matches a fresh uninterrupted run.
  CorpusSummary Resumed = runCorpusExperiment(Full, Opts);
  EXPECT_EQ(Resumed.ResumedModules, 10u);

  ExperimentOptions Fresh = faultedOptions(/*InternalPpm=*/50000,
                                           /*BadAllocPpm=*/50);
  CorpusSummary Baseline = runCorpusExperiment(Full, Fresh);
  EXPECT_EQ(Baseline.ResumedModules, 0u);
  EXPECT_EQ(renderCorpusReport(Resumed), renderCorpusReport(Baseline));
  EXPECT_EQ(corpusReportJSON(Resumed, /*IncludeTimings=*/false),
            corpusReportJSON(Baseline, /*IncludeTimings=*/false));
  std::remove(Journal.c_str());
}

TEST(CorpusRobustness, CheckpointRowsWithFreshDigestRestoreWithoutRecompute) {
  std::string Journal = tempPath("lna_ckpt_trust.txt");
  std::vector<ModuleSpec> Corpus = corpusSlice(2);
  ExperimentOptions Opts;
  Opts.CheckpointFile = Journal;
  {
    // A forged journal row with counts no real analysis would produce,
    // but carrying the module's true content digest: if the counts show
    // up verbatim, the module was restored, not re-run.
    std::ofstream Out(Journal, std::ios::trunc);
    Out << Corpus[0].Name << '\t' << moduleContentDigest(Corpus[0], Opts)
        << "\tok\t0\t77\t66\t55\tend\n";
  }
  CorpusSummary S = runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(S.ResumedModules, 1u);
  EXPECT_EQ(S.Modules[0].Actual.NoConfine, 77u);
  EXPECT_EQ(S.Modules[0].Actual.ConfineInference, 66u);
  EXPECT_EQ(S.Modules[0].Actual.AllStrong, 55u);
  std::remove(Journal.c_str());
}

TEST(CorpusRobustness, CheckpointRowsWithStaleDigestAreReanalyzed) {
  // Regression: a module whose source changed between the kill and the
  // resume must be re-analyzed, not restored from the stale journal row.
  std::string Journal = tempPath("lna_ckpt_stale.txt");
  std::remove(Journal.c_str());
  std::vector<ModuleSpec> Corpus = corpusSlice(2);
  ExperimentOptions Opts;
  Opts.CheckpointFile = Journal;
  CorpusSummary First = runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(First.ResumedModules, 0u);

  // Mutate one module: prepend a statement that adds a type error to
  // every mode. The other module's journal row stays fresh.
  std::vector<ModuleSpec> Mutated = Corpus;
  Mutated[0].Source = "var mutated : int;\nfun mutated_clash() { "
                      "mutated(1) }\n" +
                      Mutated[0].Source;
  CorpusSummary Resumed = runCorpusExperiment(Mutated, Opts);
  EXPECT_EQ(Resumed.ResumedModules, 1u); // only the unchanged module
  CorpusSummary Fresh = runCorpusExperiment(Mutated, ExperimentOptions{});
  EXPECT_EQ(renderCorpusReport(Resumed), renderCorpusReport(Fresh));
  EXPECT_EQ(corpusReportJSON(Resumed, /*IncludeTimings=*/false),
            corpusReportJSON(Fresh, /*IncludeTimings=*/false));
  std::remove(Journal.c_str());
}

TEST(CorpusRobustness, CheckpointDigestChangesWithOptions) {
  std::vector<ModuleSpec> Corpus = corpusSlice(1);
  ExperimentOptions A;
  ExperimentOptions B;
  B.Limits.MaxSteps = 12345;
  EXPECT_EQ(moduleContentDigest(Corpus[0], A),
            moduleContentDigest(Corpus[0], A));
  EXPECT_NE(moduleContentDigest(Corpus[0], A),
            moduleContentDigest(Corpus[0], B));
}

TEST(CorpusRobustness, MalformedJournalLinesAreSkipped) {
  std::string Journal = tempPath("lna_ckpt_torn.txt");
  std::vector<ModuleSpec> Corpus = corpusSlice(3);
  ExperimentOptions Opts;
  Opts.CheckpointFile = Journal;
  {
    std::ofstream Out(Journal, std::ios::trunc);
    Out << Corpus[0].Name << '\t' << moduleContentDigest(Corpus[0], Opts)
        << "\tok\t0\t1\t1\t1\tend\n";
    // A row in the old sentinel-less journal format: skipped
    // (re-analyzed), never misparsed into a bogus restore.
    Out << Corpus[1].Name << '\t' << moduleContentDigest(Corpus[1], Opts)
        << "\tok\t0\t1\t1\t1\n";
    Out << Corpus[2].Name << "\tok"; // torn final write
  }
  CorpusSummary S = runCorpusExperiment(Corpus, Opts);
  EXPECT_EQ(S.ResumedModules, 1u); // torn and old-format rows re-analyze
  EXPECT_EQ(S.FailedModules, 0u);
  std::remove(Journal.c_str());
}

//===----------------------------------------------------------------------===//
// Fault seeds
//===----------------------------------------------------------------------===//

TEST(CorpusRobustness, FaultSeedsAreNameStableAndAttemptDistinct) {
  EXPECT_EQ(moduleFaultSeed(7, "drv_clean_000", 0),
            moduleFaultSeed(7, "drv_clean_000", 0));
  EXPECT_NE(moduleFaultSeed(7, "drv_clean_000", 0),
            moduleFaultSeed(7, "drv_clean_000", 1));
  EXPECT_NE(moduleFaultSeed(7, "drv_clean_000", 0),
            moduleFaultSeed(7, "drv_clean_001", 0));
  EXPECT_NE(moduleFaultSeed(7, "drv_clean_000", 0),
            moduleFaultSeed(8, "drv_clean_000", 0));
}

//===----------------------------------------------------------------------===//
// Fuzz-harness fault mode
//===----------------------------------------------------------------------===//

TEST(FuzzRobustness, InjectedFaultsNeverEscapeTheSession) {
  FuzzOptions Opts;
  Opts.Seed = 11;
  Opts.Runs = 60;
  Opts.Gen.MaxSize = 16;
  FaultSpec Spec;
  Spec.BadAllocPpm = 300;
  Spec.InternalPpm = 150000;
  Opts.Faults = Spec;
  FuzzReport R = runFuzz(Opts);
  EXPECT_EQ(R.RunsCompleted, 60u);
  EXPECT_TRUE(R.ok()) << R.Failures.front().Message;
}

} // namespace
