//===- TypestateTest.cpp - User-defined qualifier tests -------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// The CQual substrate generalized: flow-sensitive typestate protocols
// beyond locked/unlocked, exercised with the DMA-mapping protocol
// (dma_map / dma_sync / dma_unmap). restrict/confine recover strong
// updates for any protocol, because the recovery happens at the abstract-
// location level, not the qualifier level.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "qual/Typestate.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

struct TSModes {
  uint32_t NoConfine = 0;
  uint32_t Confine = 0;
  uint32_t AllStrong = 0;
};

TSModes analyzeDma(const std::string &Src) {
  TSModes Out;
  const TypestateProtocol &Dma = TypestateProtocol::dmaMapping();
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.render();
    Out.NoConfine = analyzeTypestate(Ctx, *R, Dma).numErrors();
    TypestateOptions Strong;
    Strong.AllStrong = true;
    Out.AllStrong = analyzeTypestate(Ctx, *R, Dma, Strong).numErrors();
  }
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Src, Ctx, Diags);
    EXPECT_TRUE(P.has_value());
    PipelineOptions Opts;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.render();
    Out.Confine = analyzeTypestate(Ctx, *R, Dma).numErrors();
  }
  return Out;
}

TEST(Typestate, ProtocolLookup) {
  const TypestateProtocol &P = TypestateProtocol::dmaMapping();
  ASSERT_NE(P.find("dma_map"), nullptr);
  ASSERT_NE(P.find("dma_sync"), nullptr);
  EXPECT_EQ(P.find("spin_lock"), nullptr);
  EXPECT_EQ(P.find("dma_map")->Required, 0);
  EXPECT_EQ(P.find("dma_map")->Post, 1);
  EXPECT_EQ(P.find("dma_sync")->Required, 1);
  EXPECT_EQ(P.find("dma_sync")->Post, 1);
  EXPECT_EQ(P.stateName(TSTop), "top");
  EXPECT_EQ(P.stateName(0), "unmapped");
}

TEST(Typestate, JoinLattice) {
  EXPECT_EQ(joinTS(0, 0), 0);
  EXPECT_EQ(joinTS(0, 1), TSTop);
  EXPECT_EQ(joinTS(TSBottom, 1), 1);
  EXPECT_EQ(joinTS(TSTop, 0), TSTop);
}

TEST(Typestate, BalancedSingletonBufferIsClean) {
  TSModes M = analyzeDma("var buf : lock;\n"
                         "fun f() : int {\n"
                         "  dma_map(buf); dma_sync(buf); dma_unmap(buf) }");
  EXPECT_EQ(M.NoConfine, 0u);
  EXPECT_EQ(M.Confine, 0u);
}

TEST(Typestate, SyncWithoutMapIsAGenuineBug) {
  TSModes M = analyzeDma("var buf : lock;\n"
                         "fun f() : int { dma_sync(buf) }");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.AllStrong, 1u);
}

TEST(Typestate, DoubleMapIsAGenuineBug) {
  TSModes M = analyzeDma("var buf : lock;\n"
                         "fun f() : int { dma_map(buf); dma_map(buf) }");
  EXPECT_EQ(M.NoConfine, 1u);
  EXPECT_EQ(M.AllStrong, 1u);
}

TEST(Typestate, BufferArrayNeedsConfine) {
  // The Figure 1 story transplanted to DMA buffers: weak updates lose the
  // mapped state; confine inference recovers it.
  TSModes M = analyzeDma(
      "var bufs : array lock;\n"
      "fun f(i : int) : int {\n"
      "  dma_map(bufs[i]);\n"
      "  dma_sync(bufs[i]);\n"
      "  dma_unmap(bufs[i]) }");
  EXPECT_GT(M.NoConfine, 0u);
  EXPECT_EQ(M.Confine, 0u);
  EXPECT_EQ(M.AllStrong, 0u);
}

TEST(Typestate, SyncRequiresWithoutTransitionStaysMapped) {
  // Several syncs in a row are fine once mapped (requires-without-
  // transition), even under weak updates in the confined scope.
  TSModes M = analyzeDma(
      "var bufs : array lock;\n"
      "fun f(i : int) : int {\n"
      "  dma_map(bufs[i]);\n"
      "  dma_sync(bufs[i]);\n"
      "  dma_sync(bufs[i]);\n"
      "  dma_sync(bufs[i]);\n"
      "  dma_unmap(bufs[i]) }");
  EXPECT_EQ(M.Confine, 0u);
}

TEST(Typestate, RestrictParameterWorksForAnyProtocol) {
  TSModes M = analyzeDma(
      "var bufs : array lock;\n"
      "fun stream(restrict b : ptr lock) : int {\n"
      "  dma_map(b); dma_sync(b); dma_unmap(b) }\n"
      "fun f(i : int) : int { stream(bufs[i]) }");
  EXPECT_EQ(M.NoConfine, 0u); // the annotation alone recovers it
}

TEST(Typestate, ProtocolsAnalyzeIndependently) {
  // A module mixing locks and DMA buffers: each protocol only sees its
  // own operations.
  const char *Src = "var g : lock;\nvar buf : lock;\n"
                    "fun f() : int {\n"
                    "  spin_lock(g);\n"
                    "  dma_map(buf);\n"
                    "  dma_unmap(buf);\n"
                    "  spin_unlock(g)\n}";
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse(Src, Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(
      analyzeTypestate(Ctx, *R, TypestateProtocol::spinLock()).numErrors(),
      0u);
  EXPECT_EQ(
      analyzeTypestate(Ctx, *R, TypestateProtocol::dmaMapping()).numErrors(),
      0u);
}

TEST(Typestate, ErrorRecordsNameTheOperationAndState) {
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("var buf : lock;\nfun f() : int { dma_unmap(buf) }", Ctx,
                 Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  Opts.Mode = PipelineMode::CheckAnnotations;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  TypestateResult Res =
      analyzeTypestate(Ctx, *R, TypestateProtocol::dmaMapping());
  ASSERT_EQ(Res.numErrors(), 1u);
  EXPECT_EQ(Res.Errors[0].Op, "dma_unmap");
  EXPECT_EQ(TypestateProtocol::dmaMapping().stateName(Res.Errors[0].Pre),
            "unmapped");
}

TEST(Typestate, ConfinePlacementTriggersOnAnyChangeType) {
  // The block heuristic anchors on change_type calls generically.
  ASTContext Ctx;
  Diagnostics Diags;
  auto P = parse("var bufs : array lock;\n"
                 "fun f(i : int) : int {\n"
                 "  dma_map(bufs[i]); work(); dma_unmap(bufs[i]) }",
                 Ctx, Diags);
  ASSERT_TRUE(P.has_value());
  PipelineOptions Opts;
  auto R = runPipeline(Ctx, *P, Opts, Diags);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->OptionalConfines.empty());
  EXPECT_FALSE(R->Inference.SucceededConfines.empty());
}

} // namespace
