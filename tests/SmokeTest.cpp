//===- SmokeTest.cpp - End-to-end pipeline smoke tests --------*- C++ -*-===//
//
// Part of the lna project: a reproduction of "Checking and Inferring Local
// Non-Aliasing" (Aiken, Foster, Kodumal, Terauchi; PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Drives the full pipeline over the paper's running example (Figure 1):
// an array of locks indexed by a runtime value, locked and unlocked around
// a call to work(). Weak updates make the unlock unverifiable; confine
// inference recovers the strong update and eliminates the error.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "qual/LockAnalysis.h"

#include <gtest/gtest.h>

using namespace lna;

namespace {

// The Figure 1 program: do_with_lock(&locks[i]).
const char *Figure1 = R"(
var locks : array lock;

fun do_with_lock(l : ptr lock) : int {
  spin_lock(l);
  work();
  spin_unlock(l)
}

fun foo(i : int) : int {
  do_with_lock(locks[i])
}
)";

struct ModeErrors {
  uint32_t NoConfine;
  uint32_t ConfineInference;
  uint32_t AllStrong;
};

ModeErrors analyzeAllModes(const char *Source) {
  ModeErrors Out{};
  {
    // No confine inference (and all-strong, which shares the pipeline).
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Source, Ctx, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    PipelineOptions Opts;
    Opts.Mode = PipelineMode::CheckAnnotations;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.render();
    Out.NoConfine = analyzeLocks(Ctx, *R, {}).numErrors();
    LockAnalysisOptions Strong;
    Strong.AllStrong = true;
    Out.AllStrong = analyzeLocks(Ctx, *R, Strong).numErrors();
  }
  {
    ASTContext Ctx;
    Diagnostics Diags;
    auto P = parse(Source, Ctx, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    PipelineOptions Opts;
    auto R = runPipeline(Ctx, *P, Opts, Diags);
    EXPECT_TRUE(R.has_value()) << Diags.render();
    Out.ConfineInference = analyzeLocks(Ctx, *R, {}).numErrors();
  }
  return Out;
}

TEST(Smoke, Figure1WeakUpdatesWithoutConfine) {
  ModeErrors E = analyzeAllModes(Figure1);
  // Weak updates: the unlock cannot be verified.
  EXPECT_GT(E.NoConfine, 0u);
  // Confine inference recovers the strong updates...
  EXPECT_EQ(E.ConfineInference, 0u);
  // ...matching the all-updates-strong upper bound.
  EXPECT_EQ(E.AllStrong, 0u);
}

TEST(Smoke, SingletonGlobalLockNeedsNoConfine) {
  const char *Source = R"(
var g : lock;
fun f() : int {
  spin_lock(g);
  work();
  spin_unlock(g)
}
)";
  ModeErrors E = analyzeAllModes(Source);
  // A singleton global lock is linear: strong updates without confine.
  EXPECT_EQ(E.NoConfine, 0u);
  EXPECT_EQ(E.ConfineInference, 0u);
  EXPECT_EQ(E.AllStrong, 0u);
}

TEST(Smoke, DoubleAcquireIsAGenuineBug) {
  const char *Source = R"(
var g : lock;
fun f() : int {
  spin_lock(g);
  spin_lock(g);
  spin_unlock(g)
}
)";
  ModeErrors E = analyzeAllModes(Source);
  // The second acquire errors in every mode: no amount of strong updates
  // helps (the 85-module category of Section 7).
  EXPECT_EQ(E.NoConfine, 1u);
  EXPECT_EQ(E.ConfineInference, 1u);
  EXPECT_EQ(E.AllStrong, 1u);
}

} // namespace
